//! Criterion benchmark for cross-session ECALL batching (DESIGN.md §15):
//! a 1/4/16/64 concurrent-reader ladder driving the `workload` read mix
//! through both scheduler legs — batched (flat-combining, one enclave
//! transition per round) and bypass (one transition per call, the
//! pre-scheduler behaviour).
//!
//! The functional enclave simulator charges zero time per transition by
//! default, which would make transition coalescing invisible in wall
//! clock. This bench therefore pins `ENCDBDB_SIM_TRANSITION_NS` (500 µs
//! unless the caller already set it) before the first enclave call, so
//! every ECALL pays a simulated EENTER/EEXIT cost and the measured
//! queries/sec reflects the amortisation real SGX hardware would see.
//!
//! Quick run: `cargo bench -p encdbdb-bench --bench concurrency`
//! Knobs: `ENCDBDB_CONC_ROWS` (default 256), `ENCDBDB_CONC_QUERIES`
//! (reads per session per wave, default 16), `ENCDBDB_SIM_TRANSITION_NS`.

use colstore::column::Column;
use colstore::table::Table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use encdbdb::{ColumnSpec, DictChoice, Session, TableSchema};
use encdict::EdKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::{Op, ScheduleGen, ScheduleSpec};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One merged ED2 column over the workload value domain, kept small so the
/// in-enclave work per query stays well below the transition cost and the
/// ladder isolates transition amortisation.
fn build_session(rows: usize) -> Session {
    let mut v = Column::new("v", 8);
    for i in 0..rows {
        v.push(format!("{:04}", i % 100).as_bytes()).expect("push");
    }
    let mut table = Table::new("t");
    table.add_column(v).expect("column");
    let schema = TableSchema::new(
        "t",
        vec![ColumnSpec::new("v", DictChoice::Encrypted(EdKind::Ed2), 8)],
    );
    let mut db = Session::with_seed(0xBEEF).expect("session");
    db.load_table(&table, schema).expect("load");
    db
}

/// Pre-renders one read-only SQL stream per session (range + aggregate
/// mix) so the measured wave pays only execution.
fn query_streams(sessions: usize, queries: usize) -> Vec<Vec<String>> {
    (0..sessions)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0x10AD + i as u64);
            let gen = ScheduleGen::new(ScheduleSpec::default());
            gen.generate_reads(&mut rng, queries)
                .into_iter()
                .filter_map(|op| match op {
                    Op::RangeRead { .. } | Op::AggRead { .. } => op.render_sql("t", "v"),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

/// One wave: every session's reader thread drains its stream once.
fn run_wave(db: &Session, streams: &[Vec<String>]) {
    std::thread::scope(|scope| {
        for (i, stream) in streams.iter().enumerate() {
            let mut reader = db.reader(0x5EED + i as u64);
            scope.spawn(move || {
                for q in stream {
                    reader.execute(q).expect("query");
                }
            });
        }
    });
}

fn bench_concurrent_qps(c: &mut Criterion) {
    // Pin the simulated transition cost before the first enclave call —
    // the simulator reads it once, process-wide. 500 µs approximates the
    // SGX enter/exit + EPC-pressure regime analysed in DESIGN.md §15.
    if std::env::var("ENCDBDB_SIM_TRANSITION_NS").is_err() {
        std::env::set_var("ENCDBDB_SIM_TRANSITION_NS", "500000");
    }
    let rows = env_usize("ENCDBDB_CONC_ROWS", 256);
    let queries = env_usize("ENCDBDB_CONC_QUERIES", 16);
    let db = build_session(rows);

    let mut group = c.benchmark_group("qps");
    group.sample_size(10);
    for sessions in [1usize, 4, 16, 64] {
        let streams = query_streams(sessions, queries);
        let issued: usize = streams.iter().map(Vec::len).sum();
        group.throughput(Throughput::Elements(issued as u64));
        for (label, batched) in [("batched", true), ("bypass", false)] {
            db.server().set_ecall_batching(batched);
            group.bench_function(BenchmarkId::new(sessions.to_string(), label), |b| {
                b.iter(|| run_wave(&db, &streams))
            });
        }
    }
    group.finish();
    db.server().set_ecall_batching(true);

    let report = db.server().obs().metrics_report();
    println!(
        "  rows={rows} queries/session={queries} transitions={} batches={} coalesced={}",
        report.counter("ecalls_total"),
        report.counter("ecall_batches_total"),
        report.counter("batched_calls_total"),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_concurrent_qps
}
criterion_main!(benches);
