//! Criterion benchmarks for AttrVectSearch: serial vs parallel range scans
//! and the paper-linear vs bitmap set-membership strategies.

use colstore::dictionary::{AttributeVector, ValueId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use encdict::avsearch::{search_ids, search_ranges, Parallelism, SetSearchStrategy};
use encdict::VidRange;

fn bench_av_search(c: &mut Criterion) {
    let rows = 1_000_000usize;
    let dict_len = 10_000usize;
    let av: AttributeVector = (0..rows)
        .map(|i| ValueId(((i * 2654435761) % dict_len) as u32))
        .collect();
    let ranges = [VidRange::new(100, 200), None];

    let mut group = c.benchmark_group("av_range_scan");
    group.throughput(Throughput::Elements(rows as u64));
    for threads in [1usize, 2, 4] {
        let p = if threads == 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(threads)
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &p, |b, p| {
            b.iter(|| search_ranges(&av, &ranges, *p))
        });
    }
    group.finish();

    let vids: Vec<u32> = (0..50u32).map(|i| i * 97 % dict_len as u32).collect();
    let mut group = c.benchmark_group("av_id_list");
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("paper_linear", |b| {
        b.iter(|| {
            search_ids(
                &av,
                &vids,
                dict_len,
                SetSearchStrategy::PaperLinear,
                Parallelism::Serial,
            )
        })
    });
    group.bench_function("bitmap", |b| {
        b.iter(|| {
            search_ids(
                &av,
                &vids,
                dict_len,
                SetSearchStrategy::Bitmap,
                Parallelism::Serial,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_av_search
}
criterion_main!(benches);
