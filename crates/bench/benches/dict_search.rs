//! Criterion benchmarks for EnclDictSearch (enclave) vs the PlainDBDB twin
//! across the three order options — the per-order-option costs of Table 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encdbdb_bench::*;
use encdict::plain::search_plain;
use encdict::{DictEnclave, EdKind, EncryptedRange, RangeQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dict_search(c: &mut Criterion) {
    let rows = 20_000usize;
    let prepared = prepare_c2(rows, 10);
    let mid = prepared.sorted_uniques[prepared.sorted_uniques.len() / 2].clone();
    let hi = prepared.sorted_uniques[prepared.sorted_uniques.len() / 2 + 3].clone();
    let query = RangeQuery::between(mid, hi);

    let mut group = c.benchmark_group("dict_search");
    for kind in [EdKind::Ed1, EdKind::Ed2, EdKind::Ed3] {
        let (dict, _) = build_ed(&prepared, kind, 10, 11);
        let (pdict, _) = build_plain_ed(&prepared, kind, 10, 12);
        let mut enclave = DictEnclave::with_seed(13);
        enclave.provision_direct(master_key());
        let pae = column_pae(&prepared.spec.name);
        let mut rng = StdRng::seed_from_u64(14);
        let tau = EncryptedRange::encrypt(&pae, &mut rng, &query);

        group.bench_with_input(BenchmarkId::new("enclave", kind), &kind, |b, _| {
            b.iter(|| enclave.search(&dict, &tau).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("plain", kind), &kind, |b, _| {
            b.iter(|| search_plain(&pdict, &query).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dict_search
}
criterion_main!(benches);
