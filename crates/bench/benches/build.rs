//! Criterion benchmarks for EncDB: building each encrypted dictionary kind
//! from a plaintext column (the data owner's offline cost, Fig. 5 step 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encdbdb_bench::*;
use encdict::EdKind;

fn bench_build(c: &mut Criterion) {
    let prepared = prepare_c2(10_000, 20);
    let mut group = c.benchmark_group("encdb_build");
    for kind in EdKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| build_ed(&prepared, kind, 10, 21))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build
}
criterion_main!(benches);
