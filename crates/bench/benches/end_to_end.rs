//! Criterion benchmark for the full SQL pipeline: proxy parse + encrypt,
//! server dictionary + attribute-vector search, result render, proxy
//! decrypt (Fig. 5 steps 5-14).

use criterion::{criterion_group, criterion_main, Criterion};
use encdbdb::Session;

fn bench_end_to_end(c: &mut Criterion) {
    let mut db = Session::with_seed(30).unwrap();
    db.execute("CREATE TABLE bw (k ED5(10), v ED1(10))")
        .unwrap();
    // Load 2,000 rows via inserts + merge into the main store.
    let mut values = Vec::new();
    for i in 0..2_000 {
        values.push(format!("('k{i:06}', 'v{:06}')", i % 37));
    }
    for chunk in values.chunks(500) {
        db.execute(&format!("INSERT INTO bw VALUES {}", chunk.join(", ")))
            .unwrap();
    }
    db.merge("bw").unwrap();

    c.bench_function("sql_range_select", |b| {
        b.iter(|| {
            db.execute("SELECT v FROM bw WHERE k BETWEEN 'k000100' AND 'k000200'")
                .unwrap()
        })
    });
    c.bench_function("sql_equality_select", |b| {
        b.iter(|| db.execute("SELECT v FROM bw WHERE k = 'k000150'").unwrap())
    });
    c.bench_function("sql_insert_delta", |b| {
        b.iter(|| {
            db.execute("INSERT INTO bw VALUES ('knew000', 'vnew00')")
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
}
criterion_main!(benches);
