//! Criterion benchmark for the durability layer (DESIGN.md §12): what a
//! WAL append + fsync adds to an insert, what persisting a sealed epoch
//! snapshot adds to a merge, and how recovery time scales with how much
//! of the state lives in the WAL versus in snapshots — for ED1 vs ED9.
//!
//! The headline properties: the WAL tax on an insert is dominated by the
//! fsync (so `wal_fsync_batch` buys it back almost entirely), the
//! snapshot tax on a merge is proportional to dictionary storage size
//! (ED9 ≫ ED1), and recovery from a checkpointed state is a snapshot
//! load, independent of the history that produced it.
//!
//! Row count is overridable for quick runs:
//! `ENCDBDB_DURABILITY_ROWS=500 cargo bench -p encdbdb-bench --bench durability`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encdbdb::{DurabilityPolicy, Session};
use std::path::PathBuf;

fn row_count() -> usize {
    std::env::var("ENCDBDB_DURABILITY_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

fn value(i: usize) -> String {
    format!("{:05}", i % 10_000)
}

/// A fresh storage directory under the system temp dir.
fn bench_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("encdbdb-bench-dur-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn create(db: &mut Session, kind: &str) {
    db.execute(&format!("CREATE TABLE t (v {kind}(8))"))
        .expect("create table");
}

/// An in-memory session, a durable one, and a durable one with batched
/// fsyncs, all with background compaction off so only the write path is
/// timed.
fn sessions(kind: &str, label: &str) -> (Session, Session, Session, PathBuf, PathBuf) {
    let mut mem = Session::with_seed(71).expect("session");
    mem.set_compaction_policy(None);
    create(&mut mem, kind);

    let dur_dir = bench_dir(&format!("{label}-sync"));
    let mut dur = Session::with_seed_durable(72, &dur_dir).expect("durable session");
    dur.set_compaction_policy(None);
    create(&mut dur, kind);

    let batch_dir = bench_dir(&format!("{label}-batch"));
    let mut batched = Session::with_seed(73).expect("session");
    batched
        .server()
        .attach_durability(
            &batch_dir,
            DurabilityPolicy {
                wal_fsync_batch: 64,
                ..DurabilityPolicy::default()
            },
        )
        .expect("attach");
    batched.set_compaction_policy(None);
    create(&mut batched, kind);

    (mem, dur, batched, dur_dir, batch_dir)
}

/// The WAL tax on the insert path: in-memory vs fsync-per-record vs
/// batched fsyncs.
fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability/insert");
    group.sample_size(10);
    for kind in ["ED1", "ED9"] {
        let (mut mem, mut dur, mut batched, dur_dir, batch_dir) =
            sessions(kind, &format!("ins-{kind}"));
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("in_memory", kind), |b| {
            b.iter(|| {
                i += 1;
                mem.execute(&format!("INSERT INTO t VALUES ('{}')", value(i)))
                    .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("wal_fsync_each", kind), |b| {
            b.iter(|| {
                i += 1;
                dur.execute(&format!("INSERT INTO t VALUES ('{}')", value(i)))
                    .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("wal_fsync_batch64", kind), |b| {
            b.iter(|| {
                i += 1;
                batched
                    .execute(&format!("INSERT INTO t VALUES ('{}')", value(i)))
                    .unwrap()
            })
        });
        drop(dur);
        drop(batched);
        let _ = std::fs::remove_dir_all(dur_dir);
        let _ = std::fs::remove_dir_all(batch_dir);
    }
    group.finish();
}

/// The snapshot tax on a merge: each iteration inserts one row and
/// publishes an epoch; the durable variant also seals and persists the
/// rebuilt main store (size-proportional, so ED9 pays most).
fn bench_merge(c: &mut Criterion) {
    let rows = row_count();
    let mut group = c.benchmark_group("durability/merge");
    group.sample_size(10);
    for kind in ["ED1", "ED9"] {
        let (mut mem, mut dur, _batched, dur_dir, batch_dir) =
            sessions(kind, &format!("mrg-{kind}"));
        for i in 0..rows {
            let sql = format!("INSERT INTO t VALUES ('{}')", value(i));
            mem.execute(&sql).unwrap();
            dur.execute(&sql).unwrap();
        }
        mem.merge("t").unwrap();
        dur.merge("t").unwrap();
        let mut i = rows;
        group.bench_function(BenchmarkId::new("in_memory", kind), |b| {
            b.iter(|| {
                i += 1;
                mem.execute(&format!("INSERT INTO t VALUES ('{}')", value(i)))
                    .unwrap();
                mem.merge("t").unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("durable", kind), |b| {
            b.iter(|| {
                i += 1;
                dur.execute(&format!("INSERT INTO t VALUES ('{}')", value(i)))
                    .unwrap();
                dur.merge("t").unwrap()
            })
        });
        drop(dur);
        let _ = std::fs::remove_dir_all(dur_dir);
        let _ = std::fs::remove_dir_all(batch_dir);
    }
    group.finish();
}

/// Recovery time: replaying a WAL of `rows` insert records versus loading
/// one checkpointed snapshot holding the same logical state.
fn bench_recover(c: &mut Criterion) {
    let rows = row_count();
    let mut group = c.benchmark_group("durability/recover");
    group.sample_size(10);
    for kind in ["ED1", "ED9"] {
        // State A: everything still in the WAL.
        let wal_dir = bench_dir(&format!("rec-wal-{kind}"));
        let mut db = Session::with_seed_durable(74, &wal_dir).expect("durable session");
        db.set_compaction_policy(None);
        create(&mut db, kind);
        for i in 0..rows {
            db.execute(&format!("INSERT INTO t VALUES ('{}')", value(i)))
                .unwrap();
        }
        let key = db.master_key();
        drop(db);
        group.bench_function(BenchmarkId::new("wal_replay", kind), |b| {
            b.iter(|| Session::open(&wal_dir, key.clone(), 75).unwrap())
        });

        // State B: the same rows merged and checkpointed — recovery is one
        // snapshot load plus an empty WAL suffix.
        let snap_dir = bench_dir(&format!("rec-snap-{kind}"));
        let mut db = Session::with_seed_durable(76, &snap_dir).expect("durable session");
        db.set_compaction_policy(None);
        create(&mut db, kind);
        for i in 0..rows {
            db.execute(&format!("INSERT INTO t VALUES ('{}')", value(i)))
                .unwrap();
        }
        db.merge("t").unwrap();
        assert!(db.server().checkpoint("t").unwrap());
        let key = db.master_key();
        drop(db);
        group.bench_function(BenchmarkId::new("snapshot_load", kind), |b| {
            b.iter(|| Session::open(&snap_dir, key.clone(), 77).unwrap())
        });

        let _ = std::fs::remove_dir_all(wal_dir);
        let _ = std::fs::remove_dir_all(snap_dir);
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_merge, bench_recover);
criterion_main!(benches);
