//! Criterion benchmark for the equi-join pipeline: a 100k-row dimension
//! table joined by a 1M-row zipf-skewed fact table, comparing a
//! frequency-revealing sorted dictionary (ED1), the maximally protected
//! ED9, and the PLAIN baseline.
//!
//! The build/probe phases run untrusted on bridge ids; the one
//! `JoinBridge` ECALL decrypts each *distinct* touched join-key code once
//! per side, so ED1 pays per distinct key while ED9 — one dictionary
//! entry per occurrence — degrades to one decrypt per matching row, the
//! same padded cost its aggregates pay. PLAIN runs the identical executor
//! without the enclave, isolating the crypto+boundary overhead.
//!
//! Row count is overridable for quick runs:
//! `ENCDBDB_JOIN_ROWS=100000 cargo bench -p encdbdb-bench --bench join`
//! (the dimension side is always rows/10).

use colstore::column::Column;
use colstore::table::Table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encdbdb::{ColumnSpec, DictChoice, Session, TableSchema};
use encdict::EdKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::spec::{value_string, JoinQueryGen, JoinQueryShape};
use workload::HotShardSpec;

fn fact_rows() -> usize {
    std::env::var("ENCDBDB_JOIN_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Builds the dimension (`users`: one row per key) and fact (`orders`:
/// zipf-skewed foreign keys) tables under one protection choice, plus a
/// deterministic query generator over the shared key domain.
fn setup(choice: DictChoice, seed: u64, rows: usize) -> (Session, JoinQueryGen) {
    let dim_rows = (rows / 10).max(1);
    let key_len = 8usize;
    let keys: Vec<String> = (0..dim_rows).map(|i| value_string(i, key_len)).collect();

    let mut dim_key = Column::new("k", key_len);
    let mut dim_pay = Column::new("x", 8);
    for (i, k) in keys.iter().enumerate() {
        dim_key.push(k.as_bytes()).unwrap();
        dim_pay.push(format!("u{:07}", i).as_bytes()).unwrap();
    }
    let fact_spec = workload::spec::ColumnSpec {
        name: "k".into(),
        rows,
        unique_values: dim_rows,
        value_len: key_len,
        zipf_exponent: 0.8,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let fact_key = workload::spec::generate(&fact_spec, &mut rng);
    let mut fact_pay = Column::new("y", 8);
    for i in 0..rows {
        fact_pay.push(format!("o{:07}", i).as_bytes()).unwrap();
    }

    let mut users = Table::new("users");
    users.add_column(dim_key).unwrap();
    users.add_column(dim_pay).unwrap();
    let mut orders = Table::new("orders");
    orders.add_column(fact_key).unwrap();
    orders.add_column(fact_pay).unwrap();

    let mut db = Session::with_seed(seed).expect("session setup");
    db.load_table(
        &users,
        TableSchema::new(
            "users",
            vec![
                ColumnSpec::new("k", choice, key_len),
                ColumnSpec::new("x", choice, 8),
            ],
        ),
    )
    .expect("bulk load users");
    db.load_table(
        &orders,
        TableSchema::new(
            "orders",
            vec![
                ColumnSpec::new("k", choice, key_len),
                ColumnSpec::new("y", choice, 8),
            ],
        ),
    )
    .expect("bulk load orders");

    let gen = JoinQueryGen::new("users", "k", "x", "orders", "k", "y", keys).with_hot_range(
        HotShardSpec {
            hot_lo: 0,
            hot_hi: (dim_rows as u32 - 1) / 10,
            hot_insert_pct: 80,
        },
    );
    (db, gen)
}

fn bench_join(c: &mut Criterion) {
    let rows = fact_rows();
    let mut group = c.benchmark_group("join");
    group.sample_size(10);
    for (label, choice) in [
        ("ED1", DictChoice::Encrypted(EdKind::Ed1)),
        ("ED9", DictChoice::Encrypted(EdKind::Ed9)),
        ("PLAIN", DictChoice::Plain),
    ] {
        let (mut db, gen) = setup(choice, 5100, rows);
        let mut rng = StdRng::seed_from_u64(5200);
        let key_range = gen.draw(JoinQueryShape::KeyRange { range_size: 100 }, &mut rng);
        let hot_keys = gen.draw(JoinQueryShape::HotKeys { k: 5 }, &mut rng);
        group.bench_function(BenchmarkId::new("build_probe_key_range_100", label), |b| {
            b.iter(|| db.execute(&key_range).unwrap())
        });
        group.bench_function(BenchmarkId::new("build_probe_hot_keys_in5", label), |b| {
            b.iter(|| db.execute(&hot_keys).unwrap())
        });
        let stats = db.server().last_stats();
        println!(
            "  {label}: fact_rows={rows} build={} probe={} bridge_entries={} \
             ecalls={} decrypted={} bridge_ms={}",
            stats.join_build_rows,
            stats.join_probe_rows,
            stats.bridge_entries,
            stats.enclave_calls,
            stats.values_decrypted,
            stats.bridge_ns / 1_000_000,
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_join
}
criterion_main!(benches);
