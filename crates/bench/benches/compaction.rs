//! Criterion benchmark for the snapshot/compaction subsystem (DESIGN.md
//! §9): point-read latency with and without a concurrent merge in flight,
//! and the synchronous merge cost itself, for ED1 vs ED9.
//!
//! The headline property: read latency barely moves while a compaction
//! rebuilds the main store, because queries run against the old epoch's
//! snapshot and the merge occupies a dedicated enclave instance. ED9 pays
//! a far larger rebuild (one dictionary entry per row re-encrypted) than
//! ED1, so it bounds the window during which readers coexist with a merge.
//!
//! Row count is overridable for quick runs:
//! `ENCDBDB_COMPACTION_ROWS=2000 cargo bench -p encdbdb-bench --bench compaction`

use colstore::column::Column;
use colstore::table::Table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encdbdb::{ColumnSpec, DictChoice, Session, TableSchema};
use encdict::EdKind;
use std::time::Duration;

fn row_count() -> usize {
    std::env::var("ENCDBDB_COMPACTION_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

fn value(i: usize) -> String {
    format!("{:05}", i % 10_000)
}

fn setup(kind: EdKind, seed: u64, rows: usize) -> Session {
    let mut v = Column::new("v", 8);
    for i in 0..rows {
        v.push(value(i).as_bytes()).unwrap();
    }
    let mut table = Table::new("t");
    table.add_column(v).unwrap();
    let schema = TableSchema::new(
        "t",
        vec![ColumnSpec::new("v", DictChoice::Encrypted(kind), 8)],
    );
    let mut db = Session::with_seed(seed).expect("session setup");
    db.load_table(&table, schema).expect("bulk load");
    db
}

fn bench_compaction(c: &mut Criterion) {
    let rows = row_count();
    let mut group = c.benchmark_group("compaction");
    group.sample_size(10);
    for (label, kind) in [("ED1", EdKind::Ed1), ("ED9", EdKind::Ed9)] {
        let mut db = setup(kind, 5300, rows);
        let mut reader = db.reader(5301);
        let query = "SELECT v FROM t WHERE v = '00042'";

        // Baseline: read latency with no compaction anywhere.
        group.bench_function(BenchmarkId::new("read_idle", label), |b| {
            b.iter(|| reader.execute(query).unwrap())
        });

        // Read latency while a merge is (re)started whenever the previous
        // one finishes — the reader drains on the old snapshot throughout.
        db.server()
            .set_merge_throttle(Some(Duration::from_millis(2)));
        group.bench_function(BenchmarkId::new("read_during_merge", label), |b| {
            b.iter(|| {
                if !db.server().merge_in_flight("t").unwrap() {
                    db.execute("INSERT INTO t VALUES ('05000')").unwrap();
                    let _ = db.server().spawn_compaction("t").unwrap();
                }
                reader.execute(query).unwrap()
            })
        });
        db.server().wait_for_compaction("t").unwrap();
        db.server().set_merge_throttle(None);

        // The synchronous merge cost itself: a 1-row delta still rebuilds
        // (re-encrypts) the whole main store — the §4.3 unlinkability
        // price, which the background scheduler moves off the query path.
        group.bench_function(BenchmarkId::new("merge_sync", label), |b| {
            b.iter(|| {
                db.execute("INSERT INTO t VALUES ('05001')").unwrap();
                db.server().merge_table("t").unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
