//! Criterion benchmark for the enclave value cache (DESIGN.md §14): a
//! stream of grouped range aggregates whose hot-range bias is controlled
//! by a [`workload::HotShardSpec`], against an ED1 column whose
//! dictionary (20 K distinct values) exceeds the cache capacity (8192
//! entries).
//!
//! Each query's Aggregate ECALL decrypts one entry per distinct touched
//! ValueID — ~1000 per query here. A skewed stream keeps re-touching the
//! same few hot ranges, whose plaintexts stay cached between queries; a
//! uniform stream cycles through a 20 K-entry working set that the FIFO
//! cache cannot hold, so nearly every read decrypts. The measured speedup
//! is therefore a direct function of the hit rate.
//!
//! Row count is overridable for quick runs:
//! `ENCDBDB_CACHE_ROWS=10000 cargo bench -p encdbdb-bench --bench cache`

use colstore::table::Table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use encdbdb::{ColumnSpec, DictChoice, Session, TableSchema};
use encdict::EdKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workload::spec::{value_string, ColumnSpec as PopulationSpec};
use workload::HotShardSpec;

/// Values per query range: each aggregate touches up to this many
/// distinct ValueIDs.
const RANGE_VALUES: usize = 1000;

const VALUE_LEN: usize = 8;

fn row_count() -> usize {
    std::env::var("ENCDBDB_CACHE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000)
}

/// Draws `n` range-aggregate queries whose start slot follows the hot
/// spec: `hot_insert_pct`% of draws come from the slot window
/// `[hot_lo, hot_hi]`, the rest are uniform over all slots.
fn draw_queries(spec: HotShardSpec, slots: usize, n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let slot = if rng.gen_range(0u32..100) < spec.hot_insert_pct {
                rng.gen_range(spec.hot_lo..=spec.hot_hi) as usize
            } else {
                rng.gen_range(0..slots)
            };
            let lo = value_string(slot * RANGE_VALUES, VALUE_LEN);
            let hi = value_string(slot * RANGE_VALUES + RANGE_VALUES - 1, VALUE_LEN);
            format!("SELECT v, COUNT(*) FROM t WHERE v BETWEEN '{lo}' AND '{hi}' GROUP BY v")
        })
        .collect()
}

fn bench_value_cache(c: &mut Criterion) {
    let rows = row_count();
    let uniques = (rows / 3).max(1);
    let slots = uniques.div_ceil(RANGE_VALUES);
    let pop = PopulationSpec {
        name: "v".to_string(),
        rows,
        unique_values: uniques,
        value_len: VALUE_LEN,
        zipf_exponent: 0.7,
    };
    let mut rng = StdRng::seed_from_u64(5100);
    let column = workload::spec::generate(&pop, &mut rng);
    let mut table = Table::new("t");
    table.add_column(column).unwrap();
    let schema = TableSchema::new(
        "t",
        vec![ColumnSpec::new(
            "v",
            DictChoice::Encrypted(EdKind::Ed1),
            VALUE_LEN,
        )],
    );

    let queries_per_iter = 16usize;
    let mut group = c.benchmark_group("value_cache");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries_per_iter as u64));
    // A four-slot hot window (≤ 4000 distinct values) fits the cache;
    // the full slot set does not.
    for hot_pct in [0u32, 50, 95] {
        let spec = HotShardSpec {
            hot_lo: 0,
            hot_hi: 3.min(slots as u32 - 1),
            hot_insert_pct: hot_pct,
        };
        let queries = draw_queries(spec, slots, 64, 5200 + hot_pct as u64);
        let mut db = Session::with_seed(5300).expect("session setup");
        db.load_table(&table, schema.clone()).expect("bulk load");
        let mut next = 0usize;
        group.bench_function(BenchmarkId::new("hot_pct", hot_pct), |b| {
            b.iter(|| {
                for _ in 0..queries_per_iter {
                    db.execute(&queries[next % queries.len()]).unwrap();
                    next += 1;
                }
            })
        });
        let stats = db.server().last_stats();
        println!(
            "  hot_pct={hot_pct}: rows={rows} uniques={uniques} \
             last-query cache_hits={} decrypted={}",
            stats.cache_hits, stats.values_decrypted
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_value_cache
}
criterion_main!(benches);
