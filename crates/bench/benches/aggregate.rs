//! Criterion benchmark for the analytic query engine: grouped SUM over a
//! 1M-row fact table, comparing a frequency-revealing sorted dictionary
//! (ED1), the maximally protected ED9, and the PLAIN baseline.
//!
//! ED1 aggregates decrypt one value per *distinct* touched ValueID (a few
//! thousand for the value column, 8 for the group column); ED9 stores one
//! dictionary entry per row, so the same query decrypts once per matching
//! row — the padded-histogram cost of frequency hiding. PLAIN runs the
//! identical executor without the enclave, isolating the crypto+boundary
//! overhead, exactly like the paper's PlainDBDB twin does for range
//! search.
//!
//! Row count is overridable for quick runs:
//! `ENCDBDB_AGG_ROWS=100000 cargo bench -p encdbdb-bench --bench aggregate`

use colstore::column::Column;
use colstore::table::Table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encdbdb::{ColumnSpec, DictChoice, Session, TableSchema};
use encdict::EdKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::spec::{AggQueryGen, AggQueryShape};

const REGIONS: [&str; 8] = [
    "amer", "anz", "apj", "emea", "latam", "mee", "nordics", "uki",
];

fn row_count() -> usize {
    std::env::var("ENCDBDB_AGG_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Builds the fact table (region, price) under one protection choice and a
/// deterministic query generator over the price domain.
fn setup(choice: DictChoice, seed: u64, rows: usize) -> (Session, AggQueryGen) {
    let mut region = Column::new("region", 8);
    let mut price = Column::new("price", 6);
    let mut uniques = std::collections::BTreeSet::new();
    for i in 0..rows {
        let p = format!("{:06}", (i * 997) % 20_000);
        region.push(REGIONS[i % REGIONS.len()].as_bytes()).unwrap();
        price.push(p.as_bytes()).unwrap();
        uniques.insert(p);
    }
    let mut table = Table::new("sales");
    table.add_column(region).unwrap();
    table.add_column(price).unwrap();
    let schema = TableSchema::new(
        "sales",
        vec![
            ColumnSpec::new("region", choice, 8),
            ColumnSpec::new("price", choice, 6),
        ],
    );
    let mut db = Session::with_seed(seed).expect("session setup");
    db.load_table(&table, schema).expect("bulk load");
    let gen = AggQueryGen::new("sales", "region", "price", uniques.into_iter().collect());
    (db, gen)
}

fn bench_grouped_aggregates(c: &mut Criterion) {
    let rows = row_count();
    let mut group = c.benchmark_group("aggregate");
    group.sample_size(10);
    for (label, choice) in [
        ("ED1", DictChoice::Encrypted(EdKind::Ed1)),
        ("ED9", DictChoice::Encrypted(EdKind::Ed9)),
        ("PLAIN", DictChoice::Plain),
    ] {
        let (mut db, gen) = setup(choice, 4100, rows);
        let mut rng = StdRng::seed_from_u64(4200);
        let grouped_range = gen.draw(AggQueryShape::GroupedRange { range_size: 100 }, &mut rng);
        let top_k = gen.draw(AggQueryShape::TopK { k: 5 }, &mut rng);
        group.bench_function(BenchmarkId::new("grouped_range_sum_rs100", label), |b| {
            b.iter(|| db.execute(&grouped_range).unwrap())
        });
        group.bench_function(BenchmarkId::new("top_k_sum", label), |b| {
            b.iter(|| db.execute(&top_k).unwrap())
        });
        let stats = db.server().last_stats();
        println!(
            "  {label}: rows={rows} chunks={} ecalls={} decrypted={}",
            stats.chunks_scanned, stats.enclave_calls, stats.values_decrypted
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_grouped_aggregates
}
criterion_main!(benches);
