//! Criterion micro-benchmarks for the cryptographic substrate: the
//! per-value costs that dominate EnclDictSearch (one AES-GCM decryption per
//! dictionary entry touched, Algorithm 1).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use encdbdb_crypto::aes::Aes128;
use encdbdb_crypto::hkdf::derive_column_key;
use encdbdb_crypto::keys::{Key128, Key256};
use encdbdb_crypto::{sha256, x25519, Pae};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_crypto(c: &mut Criterion) {
    let key = Key128::from_bytes([7; 16]);
    let cipher = Aes128::new(&key);
    c.bench_function("aes128_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            cipher.encrypt_block(&mut block);
            std::hint::black_box(block[0])
        })
    });

    let pae = Pae::new(&key);
    let mut rng = StdRng::seed_from_u64(1);
    // A 10-byte value like the paper's C2 strings.
    let ct = pae.encrypt_with_rng(&mut rng, b"aaaaabbbbb", b"encdbdb/dict-value/v1");
    let mut group = c.benchmark_group("pae");
    group.throughput(Throughput::Elements(1));
    group.bench_function("encrypt_10B", |b| {
        b.iter(|| pae.encrypt_with_rng(&mut rng, b"aaaaabbbbb", b"encdbdb/dict-value/v1"))
    });
    group.bench_function("decrypt_10B", |b| {
        b.iter(|| pae.decrypt(&ct, b"encdbdb/dict-value/v1").unwrap())
    });
    group.finish();

    c.bench_function("sha256_64B", |b| {
        let data = [5u8; 64];
        b.iter(|| sha256::digest(&data))
    });
    c.bench_function("derive_column_key", |b| {
        b.iter(|| derive_column_key(&key, "bw", "C2"))
    });
    c.bench_function("x25519_shared_secret", |b| {
        let sk = Key256::from_bytes([9; 32]);
        let pk = x25519::public_key(&Key256::from_bytes([4; 32]));
        b.iter(|| x25519::shared_secret(&sk, &pk))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_crypto
}
criterion_main!(benches);
