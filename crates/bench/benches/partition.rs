//! Criterion benchmark for the partition layer (DESIGN.md §10): a grouped
//! aggregate scan over the same data at 1, 4 and 16 range partitions, for
//! ED1 vs ED9 vs PLAIN, plus read latency while a compaction rebuilds one
//! shard — single-partition vs multi-partition.
//!
//! Two headline properties:
//!
//! * the grouped scan fans out across partitions on scoped threads, so
//!   wall-clock shrinks as partitions grow (until thread overhead wins);
//! * with many partitions, a merge rebuilds one shard while the scan keeps
//!   reading every other shard's live snapshot — the compaction-during-
//!   query penalty collapses compared to the single-partition table.
//!
//! Row count is overridable for quick runs:
//! `ENCDBDB_PARTITION_ROWS=20000 cargo bench -p encdbdb-bench --bench partition`

use colstore::column::Column;
use colstore::table::Table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encdbdb::{ColumnSpec, DictChoice, Session, TablePartitioning, TableSchema};
use encdict::EdKind;
use std::time::Duration;

const DOMAIN: usize = 10_000;
const GROUPS: usize = 16;

fn row_count() -> usize {
    std::env::var("ENCDBDB_PARTITION_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

fn value(i: usize) -> String {
    format!("{:05}", i % DOMAIN)
}

fn group(i: usize) -> String {
    format!("g{:02}", i % GROUPS)
}

/// Evenly spaced split points producing `partitions` shards over the
/// 5-digit value domain.
fn split_points(partitions: usize) -> Vec<Vec<u8>> {
    (1..partitions)
        .map(|i| format!("{:05}", i * DOMAIN / partitions).into_bytes())
        .collect()
}

fn setup(choice: DictChoice, partitions: usize, seed: u64, rows: usize) -> Session {
    let mut g = Column::new("g", 4);
    let mut v = Column::new("v", 8);
    for i in 0..rows {
        g.push(group(i).as_bytes()).unwrap();
        v.push(value(i).as_bytes()).unwrap();
    }
    let mut table = Table::new("t");
    table.add_column(g).unwrap();
    table.add_column(v).unwrap();
    let mut schema = TableSchema::new(
        "t",
        vec![
            ColumnSpec::new("g", choice, 4),
            ColumnSpec::new("v", choice, 8),
        ],
    );
    if partitions > 1 {
        schema = schema.with_partitioning(TablePartitioning::new("v", split_points(partitions)));
    }
    let mut db = Session::with_seed(seed).expect("session setup");
    db.load_table(&table, schema).expect("bulk load");
    db
}

fn bench_partition(c: &mut Criterion) {
    let rows = row_count();
    let query = "SELECT g, SUM(v) FROM t GROUP BY g";

    let mut group = c.benchmark_group("partition_grouped_scan");
    group.sample_size(10);
    for (label, choice) in [
        ("ED1", DictChoice::Encrypted(EdKind::Ed1)),
        ("ED9", DictChoice::Encrypted(EdKind::Ed9)),
        ("PLAIN", DictChoice::Plain),
    ] {
        for partitions in [1usize, 4, 16] {
            let mut db = setup(choice, partitions, 6100 + partitions as u64, rows);
            group.bench_function(BenchmarkId::new(label, partitions), |b| {
                b.iter(|| db.execute(query).unwrap())
            });
        }
    }
    group.finish();

    // Compaction-during-query: a throttled merge pins one shard's rebuild
    // in flight; the grouped scan runs concurrently. With 16 partitions
    // only 1/16th of the data is behind the merge (and reads drain on its
    // old epoch anyway); with 1 partition the whole table is.
    let mut group = c.benchmark_group("partition_scan_during_merge");
    group.sample_size(10);
    for partitions in [1usize, 16] {
        let mut db = setup(DictChoice::Encrypted(EdKind::Ed1), partitions, 6200, rows);
        let mut reader = db.reader(6201);
        db.server()
            .set_merge_throttle(Some(Duration::from_millis(2)));
        group.bench_function(BenchmarkId::new("ED1", partitions), |b| {
            b.iter(|| {
                if !db.server().merge_in_flight("t").unwrap() {
                    // Dirty one shard (the first): the next spawn rebuilds
                    // only that shard on multi-partition tables.
                    db.execute("INSERT INTO t VALUES ('g00', '00000')").unwrap();
                    let _ = db.server().spawn_compaction("t").unwrap();
                }
                reader.execute(query).unwrap()
            })
        });
        db.server().wait_for_compaction("t").unwrap();
        db.server().set_merge_throttle(None);
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
