//! Regenerates **Table 5 / Figure 6** of the paper empirically: the
//! security classification of ED1–ED9 from the attacker's view.
//!
//! For each encrypted dictionary built over a skewed column, the binary
//! reports what an honest-but-curious server can measure:
//!
//! * the maximum ValueID frequency in the attribute vector (frequency
//!   leakage: exact histogram / bounded by bs_max / flat),
//! * the positional and modular order correlation of the dictionary
//!   plaintexts (order leakage: full / modular-only / none),
//!
//! and then checks the Figure 6 dominance relations on those measurements.
//!
//! Usage:
//! ```text
//! cargo run -p encdbdb-bench --release --bin table5_security -- [--rows N]
//! ```

use encdbdb_bench::*;
use encdict::leakage::{analyze, LeakageReport};
use encdict::EdKind;

fn dict_plaintexts(dict: &encdict::PlainDictionary) -> Vec<Vec<u8>> {
    (0..dict.len()).map(|i| dict.value(i).to_vec()).collect()
}

fn main() {
    let cli = CliArgs::from_env();
    let rows = cli.usize_of("rows", 20_000);
    let bs_max = 10usize;
    let prepared = prepare_c2(rows, 800);

    println!("# Table 5 / Figure 6: attacker-view measurements ({rows} rows, bs_max = {bs_max})\n");
    let widths = [6usize, 12, 12, 14, 12, 14];
    print_header(
        &[
            "ED",
            "freq class",
            "max AV freq",
            "order class",
            "order corr",
            "modular corr",
        ],
        &widths,
    );

    let mut reports: Vec<(EdKind, LeakageReport)> = Vec::new();
    for kind in EdKind::ALL {
        let (dict, av) = build_plain_ed(&prepared, kind, bs_max, 801 + kind.number() as u64);
        let report = analyze(&av, &dict_plaintexts(&dict));
        print_row(
            &[
                kind.to_string(),
                format!("{:?}", kind.frequency_leakage()),
                report.max_frequency.to_string(),
                format!("{:?}", kind.order_leakage()),
                format!("{:.3}", report.order_corr),
                format!("{:.3}", report.modular_order_corr),
            ],
            &widths,
        );
        reports.push((kind, report));
    }

    println!("\n## Figure 6 dominance checks (empirical)\n");
    let get = |k: EdKind| &reports.iter().find(|(kk, _)| *kk == k).unwrap().1;
    let mut ok = true;
    // Columns: frequency leakage weakly decreases down each column.
    for (a, b, c) in [
        (EdKind::Ed1, EdKind::Ed4, EdKind::Ed7),
        (EdKind::Ed2, EdKind::Ed5, EdKind::Ed8),
        (EdKind::Ed3, EdKind::Ed6, EdKind::Ed9),
    ] {
        let (ra, rb, rc) = (get(a), get(b), get(c));
        let holds = rb.max_frequency <= ra.max_frequency && rc.max_frequency <= rb.max_frequency;
        println!(
            "  freq({a}) >= freq({b}) >= freq({c}): {} ({} >= {} >= {})",
            if holds { "ok" } else { "VIOLATED" },
            ra.max_frequency,
            rb.max_frequency,
            rc.max_frequency
        );
        ok &= holds;
    }
    // Rows: order correlation weakly decreases left to right.
    for (a, b, c) in [
        (EdKind::Ed1, EdKind::Ed2, EdKind::Ed3),
        (EdKind::Ed4, EdKind::Ed5, EdKind::Ed6),
        (EdKind::Ed7, EdKind::Ed8, EdKind::Ed9),
    ] {
        let (ra, rb, rc) = (get(a), get(b), get(c));
        // Sorted: full order; rotated: only modular order (plain order may
        // drop); unsorted: neither.
        let holds = ra.order_corr >= 0.999
            && rb.modular_order_corr >= 0.999
            && rc.modular_order_corr < 0.95;
        println!(
            "  order({a}) full, order({b}) modular, order({c}) none: {}",
            if holds { "ok" } else { "VIOLATED" },
        );
        ok &= holds;
    }
    println!(
        "\nResult: {}",
        if ok {
            "all Figure 6 relations hold empirically"
        } else {
            "VIOLATIONS found (see above)"
        }
    );
    println!("\nClassification reference (Table 5): ED1 ≙ ideal determ. ORE,");
    println!("ED2 ≙ MOPE, ED3 ≙ DET, ED7 ≙ IND-FAOCPA, ED8 ≙ IND-CPA-DS, ED9 ≙ RPE.");
    std::process::exit(if ok { 0 } else { 1 });
}
