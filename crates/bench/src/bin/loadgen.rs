//! Concurrent-reader load generator for the cross-session ECALL batching
//! scheduler (DESIGN.md §15).
//!
//! Spawns N reader sessions against one shared server and drives a
//! read-only `workload` query mix (range selects + aggregates) through
//! both scheduler legs — batched (the default flat-combining path) and
//! bypass (one enclave lock acquisition per call, the pre-scheduler
//! behavior) — reporting queries/sec, p50/p95 latency, and how many
//! enclave transitions the batch coalescing saved.
//!
//! Usage:
//! ```text
//! cargo run -p encdbdb-bench --release --bin loadgen -- \
//!     [--sessions 16] [--queries 200] [--rows 20000] \
//!     [--mode both|batched|bypass] [--sweep]
//! ```
//!
//! `--sweep` runs the 1/4/16/64 session ladder used by
//! `benches/concurrency.rs` and `baselines/BENCH_concurrency.json`.

use colstore::column::Column;
use colstore::table::Table;
use encdbdb::{ColumnSpec, DictChoice, Session, TableSchema};
use encdbdb_bench::CliArgs;
use encdict::EdKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use workload::{Op, ScheduleGen, ScheduleSpec};

/// Builds a session over one merged ED2 column preloaded with `rows`
/// values from the workload domain.
fn build_session(rows: usize) -> Session {
    let mut v = Column::new("v", 8);
    for i in 0..rows {
        v.push(format!("{:04}", i % 100).as_bytes()).expect("push");
    }
    let mut table = Table::new("t");
    table.add_column(v).expect("column");
    let schema = TableSchema::new(
        "t",
        vec![ColumnSpec::new("v", DictChoice::Encrypted(EdKind::Ed2), 8)],
    );
    let mut db = Session::with_seed(0xBEEF).expect("session");
    db.load_table(&table, schema).expect("load");
    db
}

/// Pre-renders a read-only query stream per session so the measured loop
/// pays only execution, not generation.
fn query_streams(sessions: usize, queries: usize) -> Vec<Vec<String>> {
    (0..sessions)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0x10AD + i as u64);
            let gen = ScheduleGen::new(ScheduleSpec::default());
            gen.generate_reads(&mut rng, queries)
                .into_iter()
                .filter_map(|op| match op {
                    Op::RangeRead { .. } | Op::AggRead { .. } => op.render_sql("t", "v"),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

struct LegResult {
    qps: f64,
    p50: Duration,
    p95: Duration,
    transitions: u64,
    batches: u64,
    batched_calls: u64,
}

/// Runs one leg: `sessions` reader threads each executing its stream,
/// with the scheduler either batching or bypassed.
fn run_leg(db: &Session, streams: &[Vec<String>], batched: bool) -> LegResult {
    db.server().set_ecall_batching(batched);
    let report0 = db.server().obs().metrics_report();
    let readers: Vec<_> = (0..streams.len())
        .map(|i| db.reader(0x5EED + i as u64))
        .collect();
    let wall = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = readers
            .into_iter()
            .zip(streams)
            .map(|(mut reader, stream)| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(stream.len());
                    for q in stream {
                        let t0 = Instant::now();
                        reader.execute(q).expect("query");
                        lat.push(t0.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread"))
            .collect()
    });
    let wall = wall.elapsed();
    let report1 = db.server().obs().metrics_report();
    latencies.sort_unstable();
    let total = latencies.len();
    LegResult {
        qps: total as f64 / wall.as_secs_f64(),
        p50: latencies[total / 2],
        p95: latencies[(total * 95).div_ceil(100).max(1) - 1],
        transitions: report1.counter("ecalls_total") - report0.counter("ecalls_total"),
        batches: report1.counter("ecall_batches_total") - report0.counter("ecall_batches_total"),
        batched_calls: report1.counter("batched_calls_total")
            - report0.counter("batched_calls_total"),
    }
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn run_point(db: &Session, sessions: usize, queries: usize, modes: &[(&str, bool)]) {
    let streams = query_streams(sessions, queries);
    let issued: usize = streams.iter().map(Vec::len).sum();
    let mut batched_qps = None;
    for &(name, on) in modes {
        let r = run_leg(db, &streams, on);
        if on {
            batched_qps = Some(r.qps);
        }
        let speedup = match (on, batched_qps) {
            (false, Some(b)) if r.qps > 0.0 => format!("  ({:.2}x batched/bypass)", b / r.qps),
            _ => String::new(),
        };
        println!(
            "sessions {sessions:>3}  {name:<8} {:>9.0} q/s  p50 {:>8} ms  p95 {:>8} ms  \
             {:>5} transitions for {issued} queries ({} batches, {} coalesced){speedup}",
            r.qps,
            fmt_ms(r.p50),
            fmt_ms(r.p95),
            r.transitions,
            r.batches,
            r.batched_calls,
        );
    }
}

fn main() {
    let cli = CliArgs::from_env();
    let rows = cli.usize_of("rows", 20_000);
    let queries = cli.usize_of("queries", 200);
    let sessions = cli.usize_of("sessions", 16);
    let mode = cli.value_of("mode").unwrap_or("both");
    let modes: Vec<(&str, bool)> = match mode {
        "batched" => vec![("batched", true)],
        "bypass" => vec![("bypass", false)],
        _ => vec![("batched", true), ("bypass", false)],
    };

    let db = build_session(rows);
    println!(
        "loadgen: {rows} preloaded rows, {queries} read queries per session \
         (workload range/agg mix)"
    );
    if cli.has_flag("sweep") {
        for n in [1usize, 4, 16, 64] {
            run_point(&db, n, queries, &modes);
        }
    } else {
        run_point(&db, sessions, queries, &modes);
    }
}
