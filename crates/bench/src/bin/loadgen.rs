//! Concurrent-reader load generator for the cross-session ECALL batching
//! scheduler (DESIGN.md §15).
//!
//! Spawns N reader sessions against one shared server and drives a
//! read-only `workload` query mix (range selects + aggregates) through
//! both scheduler legs — batched (the default flat-combining path) and
//! bypass (one enclave lock acquisition per call, the pre-scheduler
//! behavior) — reporting queries/sec, p50/p95 latency, and how many
//! enclave transitions the batch coalescing saved.
//!
//! Usage:
//! ```text
//! cargo run -p encdbdb-bench --release --bin loadgen -- \
//!     [--sessions 16] [--queries 200] [--rows 20000] \
//!     [--mode both|batched|bypass] [--sweep] [--tcp] [--samples 3]
//! ```
//!
//! `--sweep` runs the 1/4/16/64 session ladder used by
//! `benches/concurrency.rs` and `baselines/BENCH_concurrency.json`.
//!
//! `--tcp` drives the same ladder over the networked service layer
//! (DESIGN.md §16): one `NetServer` on an ephemeral loopback port, N
//! real TCP client connections, and the scheduler behind them. Each
//! (connections, mode) point replays the wave `--samples` times and,
//! when `ENCDBDB_BENCH_JSON` names a directory, lands the wave-duration
//! stats as `BENCH_network.json` (ids `tcp_wave/<n>/<mode>`) in the
//! same schema the criterion benches emit. The enclave transition cost
//! is pinned to 500µs unless `ENCDBDB_SIM_TRANSITION_NS` is already
//! set, matching `baselines/BENCH_concurrency.json`.

use colstore::column::Column;
use colstore::table::Table;
use encdbdb::net::tenant_table_name;
use encdbdb::{
    ColumnSpec, DbError, DictChoice, NetClient, NetServer, NetServerConfig, Session, TableSchema,
    TenantSpec,
};
use encdbdb_bench::CliArgs;
use encdict::EdKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use workload::{Op, ScheduleGen, ScheduleSpec};

/// Tenant the TCP bench authenticates as; its namespace maps the
/// client-visible table `t` onto [`tenant_table_name`]`("bench", "t")`.
const TCP_TENANT: &str = "bench";
const TCP_TOKEN: &str = "bench-token";

/// Builds a session over one merged ED2 column preloaded with `rows`
/// values from the workload domain. `table` is the stored table name:
/// `t` for in-process legs, the tenant-qualified name for TCP legs.
fn build_session_named(rows: usize, table: &str) -> Session {
    let mut v = Column::new("v", 8);
    for i in 0..rows {
        v.push(format!("{:04}", i % 100).as_bytes()).expect("push");
    }
    let mut t = Table::new(table);
    t.add_column(v).expect("column");
    let schema = TableSchema::new(
        table,
        vec![ColumnSpec::new("v", DictChoice::Encrypted(EdKind::Ed2), 8)],
    );
    let mut db = Session::with_seed(0xBEEF).expect("session");
    db.load_table(&t, schema).expect("load");
    db
}

fn build_session(rows: usize) -> Session {
    build_session_named(rows, "t")
}

/// Pre-renders a read-only query stream per session so the measured loop
/// pays only execution, not generation.
fn query_streams(sessions: usize, queries: usize) -> Vec<Vec<String>> {
    (0..sessions)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0x10AD + i as u64);
            let gen = ScheduleGen::new(ScheduleSpec::default());
            gen.generate_reads(&mut rng, queries)
                .into_iter()
                .filter_map(|op| match op {
                    Op::RangeRead { .. } | Op::AggRead { .. } => op.render_sql("t", "v"),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

struct LegResult {
    qps: f64,
    p50: Duration,
    p95: Duration,
    transitions: u64,
    batches: u64,
    batched_calls: u64,
}

/// Runs one leg: `sessions` reader threads each executing its stream,
/// with the scheduler either batching or bypassed.
fn run_leg(db: &Session, streams: &[Vec<String>], batched: bool) -> LegResult {
    db.server().set_ecall_batching(batched);
    let report0 = db.server().obs().metrics_report();
    let readers: Vec<_> = (0..streams.len())
        .map(|i| db.reader(0x5EED + i as u64))
        .collect();
    let wall = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = readers
            .into_iter()
            .zip(streams)
            .map(|(mut reader, stream)| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(stream.len());
                    for q in stream {
                        let t0 = Instant::now();
                        reader.execute(q).expect("query");
                        lat.push(t0.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread"))
            .collect()
    });
    let wall = wall.elapsed();
    let report1 = db.server().obs().metrics_report();
    latencies.sort_unstable();
    let total = latencies.len();
    LegResult {
        qps: total as f64 / wall.as_secs_f64(),
        p50: latencies[total / 2],
        p95: latencies[(total * 95).div_ceil(100).max(1) - 1],
        transitions: report1.counter("ecalls_total") - report0.counter("ecalls_total"),
        batches: report1.counter("ecall_batches_total") - report0.counter("ecall_batches_total"),
        batched_calls: report1.counter("batched_calls_total")
            - report0.counter("batched_calls_total"),
    }
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn run_point(db: &Session, sessions: usize, queries: usize, modes: &[(&str, bool)]) {
    let streams = query_streams(sessions, queries);
    let issued: usize = streams.iter().map(Vec::len).sum();
    let mut batched_qps = None;
    for &(name, on) in modes {
        let r = run_leg(db, &streams, on);
        if on {
            batched_qps = Some(r.qps);
        }
        let speedup = match (on, batched_qps) {
            (false, Some(b)) if r.qps > 0.0 => format!("  ({:.2}x batched/bypass)", b / r.qps),
            _ => String::new(),
        };
        println!(
            "sessions {sessions:>3}  {name:<8} {:>9.0} q/s  p50 {:>8} ms  p95 {:>8} ms  \
             {:>5} transitions for {issued} queries ({} batches, {} coalesced){speedup}",
            r.qps,
            fmt_ms(r.p50),
            fmt_ms(r.p95),
            r.transitions,
            r.batches,
            r.batched_calls,
        );
    }
}

/// One (connections, scheduler-mode) point of the TCP ladder.
struct TcpPoint {
    /// Wall-clock duration of each sampled wave, in nanoseconds.
    wave_ns: Vec<u64>,
    /// Queries issued per wave (every connection replays its stream).
    issued: usize,
    /// `ServerBusy` replies absorbed by client retry loops, all waves.
    busy: u64,
    p50: Duration,
    p95: Duration,
    transitions: u64,
}

fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    sorted[(sorted.len() * pct).div_ceil(100).max(1) - 1]
}

/// Runs one TCP point: starts a fresh server around the session (the
/// scheduler mode is fixed before the session moves in), replays the
/// wave `samples` times over `streams.len()` real connections, then
/// shuts the server down and hands the session back for the next point.
fn run_tcp_point(
    db: Session,
    streams: &[Vec<String>],
    batched: bool,
    samples: usize,
) -> (Session, TcpPoint) {
    let conns = streams.len();
    db.server().set_ecall_batching(batched);
    let ecalls0 = db.metrics_report().counter("ecalls_total");
    let mut tenant = TenantSpec::new(TCP_TENANT, TCP_TOKEN);
    // Admission: cap in-flight queries below the 64-connection rung so
    // the top of the ladder demonstrably sheds (ServerBusy + retry).
    tenant.max_inflight = 32;
    let config = NetServerConfig {
        workers: conns + 2,
        max_pending_conns: conns + 8,
        max_inflight_queries: 32,
        retry_after_ms: 2,
        ..NetServerConfig::default()
    };
    let handle = NetServer::start(db, vec![tenant], config).expect("server start");
    let addr = handle.addr();

    let mut wave_ns = Vec::with_capacity(samples);
    let mut busy = 0u64;
    let mut latencies: Vec<Duration> = Vec::new();
    for _ in 0..samples {
        // Connections are established outside the timed window; the
        // wave measures query throughput, not handshakes.
        let clients: Vec<NetClient> = (0..conns)
            .map(|_| NetClient::connect(addr, TCP_TENANT, TCP_TOKEN).expect("connect"))
            .collect();
        let wall = Instant::now();
        let wave: Vec<(Vec<Duration>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = clients
                .into_iter()
                .zip(streams)
                .map(|(mut client, stream)| {
                    scope.spawn(move || {
                        let mut lat = Vec::with_capacity(stream.len());
                        let mut shed = 0u64;
                        for q in stream {
                            let t0 = Instant::now();
                            loop {
                                match client.execute(q) {
                                    Ok(_) => break,
                                    Err(DbError::ServerBusy { retry_after_ms }) => {
                                        shed += 1;
                                        std::thread::sleep(Duration::from_millis(retry_after_ms));
                                    }
                                    Err(e) => panic!("tcp query failed: {e}"),
                                }
                            }
                            lat.push(t0.elapsed());
                        }
                        client.close();
                        (lat, shed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        wave_ns.push(wall.elapsed().as_nanos().max(1) as u64);
        for (lat, shed) in wave {
            latencies.extend(lat);
            busy += shed;
        }
    }

    let db = handle.shutdown().expect("graceful shutdown");
    let transitions = db.metrics_report().counter("ecalls_total") - ecalls0;
    latencies.sort_unstable();
    let issued: usize = streams.iter().map(Vec::len).sum();
    let point = TcpPoint {
        wave_ns,
        issued,
        busy,
        p50: latencies[latencies.len() / 2],
        p95: percentile(&latencies, 95),
        transitions,
    };
    (db, point)
}

/// Writes `BENCH_network.json` into `$ENCDBDB_BENCH_JSON` using the
/// same schema the criterion shim emits (`tools/validate_bench_json.py`
/// schema 1): loadgen is a plain binary, so it renders the file itself.
fn emit_bench_json(entries: &[(String, u64, u64, usize)], env: &BTreeMap<String, String>) {
    let Ok(dir) = std::env::var("ENCDBDB_BENCH_JSON") else {
        return;
    };
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out =
        String::from("{\n  \"schema\": 1,\n  \"area\": \"network\",\n  \"benchmarks\": [\n");
    for (i, (id, median, p95, samples)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {median}, \"p95_ns\": {p95}, \
             \"samples\": {samples}}}{comma}\n",
            esc(id)
        ));
    }
    out.push_str("  ],\n  \"env\": {\n");
    for (i, (k, v)) in env.iter().enumerate() {
        let comma = if i + 1 == env.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\": \"{}\"{comma}\n", esc(k), esc(v)));
    }
    out.push_str("  }\n}\n");
    let path = std::path::Path::new(&dir).join("BENCH_network.json");
    std::fs::write(&path, out).expect("write BENCH_network.json");
    println!("wrote {}", path.display());
}

/// The `--tcp` ladder: 1/4/16/64 real connections against one server,
/// batched and bypass scheduler legs, wave-duration stats per point.
fn run_tcp(cli: &CliArgs, modes: &[(&str, bool)]) {
    // Pin the enclave transition cost before the first enclave call so
    // the landed baseline is comparable across machines.
    if std::env::var("ENCDBDB_SIM_TRANSITION_NS").is_err() {
        std::env::set_var("ENCDBDB_SIM_TRANSITION_NS", "500000");
    }
    // Smaller defaults than the in-process ladder: the TCP points are
    // meant to be transition-bound (where coalescing and connection
    // concurrency pay), not bound by per-row decrypt work.
    let rows = cli.usize_of("rows", 512);
    let queries = cli.usize_of("queries", 16);
    let samples = cli.usize_of("samples", 3).max(1);
    let ladder: Vec<usize> = if cli.has_flag("sweep") {
        vec![1, 4, 16, 64]
    } else {
        vec![cli.usize_of("sessions", 16)]
    };

    let mut db = build_session_named(rows, &tenant_table_name(TCP_TENANT, "t"));
    println!(
        "loadgen --tcp: {rows} preloaded rows, {queries} read queries per connection, \
         {samples} waves per point"
    );
    let mut entries: Vec<(String, u64, u64, usize)> = Vec::new();
    let mut env: BTreeMap<String, String> = BTreeMap::new();
    env.insert(
        "ENCDBDB_SIM_TRANSITION_NS".into(),
        std::env::var("ENCDBDB_SIM_TRANSITION_NS").unwrap_or_default(),
    );
    env.insert("ENCDBDB_NET_ROWS".into(), rows.to_string());
    env.insert("ENCDBDB_NET_QUERIES".into(), queries.to_string());
    env.insert("ENCDBDB_NET_SAMPLES".into(), samples.to_string());

    for &n in &ladder {
        let streams = query_streams(n, queries);
        for &(name, on) in modes {
            let (db2, point) = run_tcp_point(db, &streams, on, samples);
            db = db2;
            let mut sorted = point.wave_ns.clone();
            sorted.sort_unstable();
            let median = sorted[sorted.len() / 2];
            let p95 = sorted[(sorted.len() * 95).div_ceil(100).max(1) - 1];
            let qps = point.issued as f64 * samples as f64
                / (point.wave_ns.iter().sum::<u64>() as f64 / 1e9);
            println!(
                "tcp conns {n:>3}  {name:<8} {qps:>9.0} q/s  p50 {:>8} ms  p95 {:>8} ms  \
                 wave median {:.1} ms  {} transitions  {} busy replies",
                fmt_ms(point.p50),
                fmt_ms(point.p95),
                median as f64 / 1e6,
                point.transitions,
                point.busy,
            );
            entries.push((format!("tcp_wave/{n}/{name}"), median, p95, samples));
            env.insert(format!("ENCDBDB_NET_ISSUED_{n}"), point.issued.to_string());
            env.insert(
                format!("ENCDBDB_NET_BUSY_{n}_{name}"),
                point.busy.to_string(),
            );
        }
    }
    emit_bench_json(&entries, &env);
}

fn main() {
    let cli = CliArgs::from_env();
    let rows = cli.usize_of("rows", 20_000);
    let queries = cli.usize_of("queries", 200);
    let sessions = cli.usize_of("sessions", 16);
    let mode = cli.value_of("mode").unwrap_or("both");
    let modes: Vec<(&str, bool)> = match mode {
        "batched" => vec![("batched", true)],
        "bypass" => vec![("bypass", false)],
        _ => vec![("batched", true), ("bypass", false)],
    };

    if cli.has_flag("tcp") {
        run_tcp(&cli, &modes);
        return;
    }

    let db = build_session(rows);
    println!(
        "loadgen: {rows} preloaded rows, {queries} read queries per session \
         (workload range/agg mix)"
    );
    if cli.has_flag("sweep") {
        for n in [1usize, 4, 16, 64] {
            run_point(&db, n, queries, &modes);
        }
    } else {
        run_point(&db, sessions, queries, &modes);
    }
}
