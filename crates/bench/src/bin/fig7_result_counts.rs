//! Regenerates **Figure 7** of the paper: average number of results
//! returned by 500 random range queries for columns C1 and C2 at range
//! sizes 2 and 100, across dataset sizes from 1 M rows to the full set.
//!
//! Result counts depend only on the occurrence distribution, so they are
//! computed exactly from prefix sums over `sorted(un(C))` — this lets the
//! binary run the paper's full 10.9 M-row scale in seconds.
//!
//! Usage:
//! ```text
//! cargo run -p encdbdb-bench --release --bin fig7_result_counts -- \
//!     [--queries N] [--sizes 1000000,2000000,...] [--full]
//! ```

use encdbdb_bench::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workload::spec::ColumnSpec;

fn average_results(prepared: &PreparedColumn, rs: usize, queries: usize, seed: u64) -> f64 {
    // Prefix sums of occurrence counts over the sorted unique values.
    let mut prefix = Vec::with_capacity(prepared.sorted_uniques.len() + 1);
    prefix.push(0u64);
    for v in &prepared.sorted_uniques {
        let occ = prepared.stats.occurrences_of(v.as_bytes()).len() as u64;
        prefix.push(prefix.last().unwrap() + occ);
    }
    let uniques = prepared.sorted_uniques.len();
    let rs = rs.min(uniques);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0u64;
    for _ in 0..queries {
        let i = rng.gen_range(0..=uniques - rs);
        total += prefix[i + rs] - prefix[i];
    }
    total as f64 / queries as f64
}

fn main() {
    let cli = CliArgs::from_env();
    let queries = cli.usize_of("queries", 500);
    let default_sizes = if cli.has_flag("full") {
        vec![
            1_000_000, 2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000, 10_900_000,
        ]
    } else {
        vec![100_000, 250_000, 500_000, 1_000_000]
    };
    let sizes: Vec<usize> = cli
        .value_of("sizes")
        .map(|s| {
            s.split(',')
                .map(|v| v.replace('_', "").parse().expect("numeric size"))
                .collect()
        })
        .unwrap_or(default_sizes);

    println!("# Figure 7: average results of {queries} random range queries\n");
    let widths = [12usize, 10, 16, 16];
    print_header(&["rows", "RS", "C1 avg results", "C2 avg results"], &widths);

    for &rows in &sizes {
        let c1 = prepare(ColumnSpec::c1_full().scaled(rows), 201);
        let c2 = prepare(ColumnSpec::c2_full().scaled(rows), 202);
        for rs in [2usize, 100] {
            let a1 = average_results(&c1, rs, queries, 301);
            let a2 = average_results(&c2, rs, queries, 302);
            print_row(
                &[
                    rows.to_string(),
                    rs.to_string(),
                    format!("{a1:.1}"),
                    format!("{a2:.1}"),
                ],
                &widths,
            );
        }
    }

    println!();
    println!("Expected shape (paper): C2 returns orders of magnitude more rows than");
    println!("C1 for equal RS (few uniques -> many occurrences per unique; the paper");
    println!("reports 65,067 average results for full C2 at RS = 100).");
}
