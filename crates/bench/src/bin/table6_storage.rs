//! Regenerates **Table 6** of the paper: storage size of various column
//! representations for the C1 and C2 columns.
//!
//! Rows: plaintext file, encrypted file, MonetDB, ED1/2/3,
//! ED4/5/6 (bs_max ∈ {100, 10, 2}), ED7/8/9.
//!
//! Usage:
//! ```text
//! cargo run -p encdbdb-bench --release --bin table6_storage -- [--rows N] [--full]
//! ```
//! `--full` uses the paper's 10.9 M rows (needs several GB of RAM and a few
//! minutes of software-AES time); the default 500 k preserves all ratios.

use colstore::monetdb::MonetColumn;
use encdbdb_bench::*;
use encdbdb_crypto::gcm::OVERHEAD;
use encdict::EdKind;

fn main() {
    let cli = CliArgs::from_env();
    let rows = if cli.has_flag("full") {
        10_900_000
    } else {
        cli.usize_of("rows", 500_000)
    };
    println!("# Table 6: storage size of various variants ({rows} rows)\n");

    let widths = [28usize, 14, 14];
    print_header(&["variant", "size C1", "size C2"], &widths);

    let c1 = prepare_c1(rows, 101);
    let c2 = prepare_c2(rows, 102);

    let per_column = |p: &PreparedColumn, f: &dyn Fn(&PreparedColumn) -> usize| f(p);
    let row = |label: &str, f: &dyn Fn(&PreparedColumn) -> usize| {
        let s1 = per_column(&c1, f);
        let s2 = per_column(&c2, f);
        print_row(&[label.to_string(), fmt_bytes(s1), fmt_bytes(s2)], &widths);
    };

    // Plaintext file: raw values, no dictionary encoding.
    row("Plaintext file", &|p| p.column.plaintext_file_size());

    // Encrypted file: every value individually PAE-encrypted (IV+tag).
    row("Encrypted file", &|p| {
        p.column.plaintext_file_size() + p.column.len() * OVERHEAD
    });

    // MonetDB baseline.
    row("MonetDB", &|p| {
        MonetColumn::ingest(&p.column).storage_size()
    });

    // Encrypted dictionaries. Within a (repetition, bs_max) group the three
    // order options have identical size, as the paper groups them.
    let ed_row = |label: &str, kind: EdKind, bs_max: usize| {
        let size = |p: &PreparedColumn| {
            let (dict, av) = build_ed(p, kind, bs_max, 7);
            dict.storage_size() + av.packed_size(dict.len())
        };
        row(label, &size);
    };
    ed_row("ED1/ED2/ED3", EdKind::Ed1, 10);
    ed_row("ED4/ED5/ED6, bsmax = 100", EdKind::Ed4, 100);
    ed_row("ED4/ED5/ED6, bsmax = 10", EdKind::Ed4, 10);
    ed_row("ED4/ED5/ED6, bsmax = 2", EdKind::Ed4, 2);
    ed_row("ED7/ED8/ED9", EdKind::Ed7, 10);

    println!();
    println!("Expected shape (paper, full 10.9 M rows):");
    println!("  - ED1-3 on C2 is far below the plaintext file (22 MB vs 93 MB): the");
    println!("    compressed encrypted column beats uncompressed plaintext.");
    println!("  - smaller bs_max => larger dictionaries (more duplicates stored).");
    println!("  - ED7-9 is the largest variant (|D| = |AV|, no compression).");
}
