//! Regenerates **Tables 2–4** of the paper empirically:
//!
//! * Table 2 — the 3×3 grid of encrypted dictionaries;
//! * Table 3 — frequency leakage and dictionary size per repetition option
//!   (including the `Σ 2·|oc(C,v)| / (1 + bs_max)` estimate for smoothing);
//! * Table 4 — order leakage and search complexity per order option,
//!   verified by counting enclave loads at two dictionary sizes (the load
//!   count grows logarithmically for sorted/rotated and linearly for
//!   unsorted).
//!
//! Usage:
//! ```text
//! cargo run -p encdbdb-bench --release --bin table34_characteristics -- [--rows N]
//! ```

use encdbdb_bench::*;
use encdict::leakage::FrequencyProfile;
use encdict::{DictEnclave, EdKind, EncryptedRange, RangeQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = CliArgs::from_env();
    let rows = cli.usize_of("rows", 50_000);

    println!("# Table 2: encrypted dictionary grid\n");
    let widths = [22usize, 8, 8, 9];
    print_header(
        &["repetition \\ order", "sorted", "rotated", "unsorted"],
        &widths,
    );
    for (label, row_kinds) in [
        (
            "frequency revealing",
            [EdKind::Ed1, EdKind::Ed2, EdKind::Ed3],
        ),
        (
            "frequency smoothing",
            [EdKind::Ed4, EdKind::Ed5, EdKind::Ed6],
        ),
        ("frequency hiding", [EdKind::Ed7, EdKind::Ed8, EdKind::Ed9]),
    ] {
        print_row(
            &[
                label.to_string(),
                row_kinds[0].to_string(),
                row_kinds[1].to_string(),
                row_kinds[2].to_string(),
            ],
            &widths,
        );
    }

    let prepared = prepare_c2(rows, 900);
    let uniques = prepared.stats.unique_count();
    let bs_max = 10usize;

    println!(
        "\n# Table 3: repetition options ({rows} rows, {uniques} uniques, bs_max = {bs_max})\n"
    );
    let widths = [22usize, 12, 14, 14, 16];
    print_header(
        &[
            "repetition",
            "freq. leak",
            "|D| measured",
            "|D| expected",
            "max AV freq",
        ],
        &widths,
    );
    for (kind, label) in [
        (EdKind::Ed1, "revealing"),
        (EdKind::Ed4, "smoothing"),
        (EdKind::Ed7, "hiding"),
    ] {
        let (dict, av) = build_ed(&prepared, kind, bs_max, 901);
        let expected = match kind {
            EdKind::Ed1 => uniques as f64,
            EdKind::Ed4 => prepared.stats.expected_smoothed_dict_size(bs_max),
            _ => prepared.column.len() as f64,
        };
        let profile = FrequencyProfile::of(&av);
        print_row(
            &[
                label.to_string(),
                format!("{:?}", kind.frequency_leakage()),
                dict.len().to_string(),
                format!("{expected:.0}"),
                profile.max_count().to_string(),
            ],
            &widths,
        );
    }

    println!("\n# Table 4: order options — enclave loads per dictionary search\n");
    let small = prepare_c2(rows / 4, 902);
    let large = prepare_c2(rows, 903);
    let widths = [10usize, 12, 16, 16, 10];
    print_header(
        &["order", "order leak", "loads |D|/4", "loads |D|", "growth"],
        &widths,
    );
    for (kind, label) in [
        (EdKind::Ed1, "sorted"),
        (EdKind::Ed2, "rotated"),
        (EdKind::Ed3, "unsorted"),
    ] {
        let mut loads = Vec::new();
        for p in [&small, &large] {
            let (dict, _) = build_ed(p, kind, bs_max, 904);
            let mut enclave = DictEnclave::with_seed(905);
            enclave.provision_direct(master_key());
            let pae = column_pae(&p.spec.name);
            let mut rng = StdRng::seed_from_u64(906);
            let mid = &p.sorted_uniques[p.sorted_uniques.len() / 2];
            let tau = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::equals(mid.clone()));
            enclave.enclave_mut().reset_counters();
            let _ = enclave.search(&dict, &tau).expect("search");
            loads.push(enclave.enclave().counters().untrusted_loads);
        }
        let growth = loads[1] as f64 / loads[0] as f64;
        print_row(
            &[
                label.to_string(),
                format!("{:?}", kind.order_leakage()),
                loads[0].to_string(),
                loads[1].to_string(),
                format!("{growth:.2}x"),
            ],
            &widths,
        );
    }
    println!();
    println!("Expected shape: sorted/rotated loads grow by ~log factor (growth ≈ 1.x)");
    println!("while unsorted grows linearly (growth ≈ 4x for 4x the dictionary).");
}
