//! Regenerates the **EncDBDB row of Table 1**: compression support, storage
//! overhead vs a plaintext database, performance overhead vs plaintext
//! processing, and the trusted LoC count.
//!
//! * Storage overhead: ED1-3 column size vs the MonetDB plaintext baseline
//!   (paper: < 100 %, and *negative* for repetitive columns like C2).
//! * Performance overhead: EncDBDB ED1 vs PlainDBDB on the same queries
//!   (paper: ~8.9 %).
//! * Trusted LoC: the in-enclave code of this reproduction, counted from
//!   the embedded sources (paper: 1129 LoC).
//!
//! Usage:
//! ```text
//! cargo run -p encdbdb-bench --release --bin table1_summary -- [--rows N] [--queries N]
//! ```

use colstore::monetdb::MonetColumn;
use encdbdb_bench::*;
use encdict::avsearch::{self, Parallelism, SetSearchStrategy};
use encdict::plain::search_plain;
use encdict::{DictEnclave, EdKind, EncryptedRange};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::RangeQueryGen;

/// The trusted computing base: everything that runs inside the enclave.
const TCB_SOURCES: &[(&str, &str)] = &[
    (
        "enclave_ops.rs",
        include_str!("../../../encdict/src/enclave_ops.rs"),
    ),
    (
        "search/mod.rs",
        include_str!("../../../encdict/src/search/mod.rs"),
    ),
    (
        "search/sorted.rs",
        include_str!("../../../encdict/src/search/sorted.rs"),
    ),
    (
        "search/rotated.rs",
        include_str!("../../../encdict/src/search/rotated.rs"),
    ),
    (
        "search/unsorted.rs",
        include_str!("../../../encdict/src/search/unsorted.rs"),
    ),
    ("encode.rs", include_str!("../../../encdict/src/encode.rs")),
    ("bigint.rs", include_str!("../../../encdict/src/bigint.rs")),
];

/// Counts non-empty, non-comment, non-test lines (a simple LoC metric).
fn count_loc(source: &str) -> usize {
    let mut loc = 0usize;
    let mut in_tests = false;
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        loc += 1;
    }
    loc
}

fn main() {
    let cli = CliArgs::from_env();
    let rows = cli.usize_of("rows", 200_000);
    let queries = cli.usize_of("queries", 50);
    let prepared = prepare_c2(rows, 700);

    println!("# Table 1 (EncDBDB row): measured on the C2 twin, {rows} rows\n");

    // --- Storage overhead vs the MonetDB plaintext baseline.
    let monet = MonetColumn::ingest(&prepared.column);
    let (dict, av) = build_ed(&prepared, EdKind::Ed1, 10, 701);
    let ed_size = dict.storage_size() + av.packed_size(dict.len());
    let overhead_pct =
        100.0 * (ed_size as f64 - monet.storage_size() as f64) / monet.storage_size() as f64;
    println!("compression:        supported (dictionary encoding, all nine EDs)");
    println!(
        "storage:            ED1 {} vs MonetDB {} -> {overhead_pct:+.1} %",
        fmt_bytes(ed_size),
        fmt_bytes(monet.storage_size()),
    );

    // --- Performance overhead EncDBDB vs PlainDBDB (ED1, RS = 100).
    let rs = 100.min(prepared.sorted_uniques.len());
    let gen = RangeQueryGen::new(prepared.sorted_uniques.clone(), rs);
    let (pdict, pav) = build_plain_ed(&prepared, EdKind::Ed1, 10, 702);
    let mut rng = StdRng::seed_from_u64(703);
    let batch = gen.draw_batch(&mut rng, queries);

    let mut plain_durs = Vec::with_capacity(queries);
    for q in &batch {
        let (n, d) = time(|| {
            let r = search_plain(&pdict, q).expect("plain search");
            avsearch::search(
                &pav,
                &r,
                pdict.len(),
                SetSearchStrategy::PaperLinear,
                Parallelism::Serial,
            )
            .len()
        });
        std::hint::black_box(n);
        plain_durs.push(d);
    }
    let mut enclave = DictEnclave::with_seed(704);
    enclave.provision_direct(master_key());
    let pae = column_pae(&prepared.spec.name);
    let mut enc_durs = Vec::with_capacity(queries);
    for q in &batch {
        let tau = EncryptedRange::encrypt(&pae, &mut rng, q);
        let (n, d) = time(|| {
            let r = enclave.search(&dict, &tau).expect("enclave search");
            avsearch::search(
                &av,
                &r,
                dict.len(),
                SetSearchStrategy::PaperLinear,
                Parallelism::Serial,
            )
            .len()
        });
        std::hint::black_box(n);
        enc_durs.push(d);
    }
    let plain = LatencySummary::of(&plain_durs);
    let enc = LatencySummary::of(&enc_durs);
    let perf_pct =
        100.0 * (enc.mean.as_secs_f64() - plain.mean.as_secs_f64()) / plain.mean.as_secs_f64();
    println!(
        "performance:        EncDBDB {} vs PlainDBDB {} -> {perf_pct:+.1} % (paper: ~8.9 % with AES-NI)",
        fmt_duration(enc.mean),
        fmt_duration(plain.mean),
    );

    // --- Trusted LoC.
    println!("\ntrusted computing base (in-enclave code):");
    let mut total = 0usize;
    for (name, source) in TCB_SOURCES {
        let loc = count_loc(source);
        total += loc;
        println!("  {name:<20} {loc:>5} LoC");
    }
    println!("  {:<20} {total:>5} LoC (paper's C enclave: 1129)", "TOTAL");
    println!();
    println!("note: the software-AES substitution inflates the absolute performance");
    println!("overhead vs the paper's hardware AES-GCM; the shape (constant additive");
    println!("crypto cost per touched dictionary entry) is preserved.");
}
