//! Regenerates **Figure 8** of the paper: average latency of random range
//! queries for columns C1 and C2, protected by (a) ED1–ED3, (b) ED4–ED6
//! (bs_max = 10), (c) ED7–ED9, each compared against the MonetDB-like
//! plaintext baseline and PlainDBDB.
//!
//! Usage:
//! ```text
//! cargo run -p encdbdb-bench --release --bin fig8_latency -- \
//!     [--group a|b|c|all] [--rows N] [--queries N] [--threads N] [--monetdb]
//! ```
//!
//! Defaults are sized for a quick run (100 k rows, 50 queries per point;
//! linear-scan variants automatically use fewer queries). Pass `--rows
//! 10_900_000 --queries 500` for the paper's full configuration. The
//! MonetDB baseline performs a linear *string* scan per query and dominates
//! runtime at large scales, so it is off by default above 1 M rows unless
//! `--monetdb` is passed.

use colstore::monetdb::MonetColumn;
use encdbdb_bench::*;
use encdict::avsearch::{self, Parallelism, SetSearchStrategy};
use encdict::plain::search_plain;
use encdict::{DictEnclave, EdKind, EncryptedRange, OrderOption};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::RangeQueryGen;

struct Config {
    rows: usize,
    queries: usize,
    parallelism: Parallelism,
    run_monetdb: bool,
}

fn group_kinds(group: &str) -> Vec<EdKind> {
    match group {
        "a" => vec![EdKind::Ed1, EdKind::Ed2, EdKind::Ed3],
        "b" => vec![EdKind::Ed4, EdKind::Ed5, EdKind::Ed6],
        "c" => vec![EdKind::Ed7, EdKind::Ed8, EdKind::Ed9],
        _ => EdKind::ALL.to_vec(),
    }
}

/// Linear-scan kinds are orders of magnitude slower; run fewer queries so
/// the harness stays interactive (the mean is what is reported anyway).
fn queries_for(kind: EdKind, base: usize) -> usize {
    match kind.order() {
        OrderOption::Unsorted => (base / 10).max(3),
        _ => base,
    }
}

fn run_monetdb(prepared: &PreparedColumn, rs: usize, cfg: &Config) -> LatencySummary {
    let monet = MonetColumn::ingest(&prepared.column);
    let gen = RangeQueryGen::new(prepared.sorted_uniques.clone(), rs);
    let mut rng = StdRng::seed_from_u64(400);
    let queries = (cfg.queries / 5).max(3); // linear string scans are slow
    let mut durations = Vec::with_capacity(queries);
    for q in gen.draw_batch(&mut rng, queries) {
        let (lo, hi) = match (&q.start, &q.end) {
            (encdict::RangeBound::Inclusive(a), encdict::RangeBound::Inclusive(b)) => {
                (a.clone(), b.clone())
            }
            _ => unreachable!("RS queries are closed ranges"),
        };
        let (rids, d) = time(|| monet.range_search_inclusive(&lo, &hi));
        std::hint::black_box(rids.len());
        durations.push(d);
    }
    LatencySummary::of(&durations)
}

fn run_plaindbdb(
    prepared: &PreparedColumn,
    kind: EdKind,
    rs: usize,
    cfg: &Config,
) -> LatencySummary {
    let (dict, av) = build_plain_ed(prepared, kind, 10, 500 + kind.number() as u64);
    let gen = RangeQueryGen::new(prepared.sorted_uniques.clone(), rs);
    let mut rng = StdRng::seed_from_u64(401);
    let queries = queries_for(kind, cfg.queries);
    let mut durations = Vec::with_capacity(queries);
    for q in gen.draw_batch(&mut rng, queries) {
        let (n, d) = time(|| {
            let result = search_plain(&dict, &q).expect("plain search");
            avsearch::search(
                &av,
                &result,
                dict.len(),
                SetSearchStrategy::PaperLinear,
                cfg.parallelism,
            )
            .len()
        });
        std::hint::black_box(n);
        durations.push(d);
    }
    LatencySummary::of(&durations)
}

fn run_encdbdb(prepared: &PreparedColumn, kind: EdKind, rs: usize, cfg: &Config) -> LatencySummary {
    let (dict, av) = build_ed(prepared, kind, 10, 600 + kind.number() as u64);
    let mut enclave = DictEnclave::with_seed(601);
    enclave.provision_direct(master_key());
    let pae = column_pae(&prepared.spec.name);
    let gen = RangeQueryGen::new(prepared.sorted_uniques.clone(), rs);
    let mut rng = StdRng::seed_from_u64(402);
    let queries = queries_for(kind, cfg.queries);
    let mut durations = Vec::with_capacity(queries);
    for q in gen.draw_batch(&mut rng, queries) {
        // Latency measured server-side, including the proxy-equivalent
        // range encryption cost (the paper measures server processing; the
        // encryption of two bounds is negligible and done outside `time`).
        let tau = EncryptedRange::encrypt(&pae, &mut rng, &q);
        let (n, d) = time(|| {
            let result = enclave.search(&dict, &tau).expect("enclave search");
            avsearch::search(
                &av,
                &result,
                dict.len(),
                SetSearchStrategy::PaperLinear,
                cfg.parallelism,
            )
            .len()
        });
        std::hint::black_box(n);
        durations.push(d);
    }
    LatencySummary::of(&durations)
}

fn main() {
    let cli = CliArgs::from_env();
    let group = cli.value_of("group").unwrap_or("all").to_string();
    let cfg = Config {
        rows: cli.usize_of("rows", 100_000),
        queries: cli.usize_of("queries", 50),
        parallelism: match cli.usize_of("threads", 1) {
            0 | 1 => Parallelism::Serial,
            n => Parallelism::Threads(n),
        },
        run_monetdb: cli.has_flag("monetdb") || cli.usize_of("rows", 100_000) <= 1_000_000,
    };
    println!(
        "# Figure 8 ({group}): average range-query latency, {} rows, {} queries/point\n",
        cfg.rows, cfg.queries
    );

    let columns = [prepare_c1(cfg.rows, 111), prepare_c2(cfg.rows, 112)];
    let widths = [6usize, 6, 10, 12, 12, 12];
    print_header(&["col", "RS", "system", "mean", "min", "max"], &widths);

    for prepared in &columns {
        for requested_rs in [2usize, 100] {
            // At small scales C2 has fewer than 100 uniques; clamp so the
            // "wide range" series still runs (it then spans the domain).
            let rs = requested_rs.min(prepared.sorted_uniques.len());
            if cfg.run_monetdb {
                let s = run_monetdb(prepared, rs, &cfg);
                print_row(
                    &[
                        prepared.spec.name.clone(),
                        rs.to_string(),
                        "MonetDB".to_string(),
                        fmt_duration(s.mean),
                        fmt_duration(s.min),
                        fmt_duration(s.max),
                    ],
                    &widths,
                );
            }
            for kind in group_kinds(&group) {
                let plain = run_plaindbdb(prepared, kind, rs, &cfg);
                let enc = run_encdbdb(prepared, kind, rs, &cfg);
                print_row(
                    &[
                        prepared.spec.name.clone(),
                        rs.to_string(),
                        format!("P-{kind}"),
                        fmt_duration(plain.mean),
                        fmt_duration(plain.min),
                        fmt_duration(plain.max),
                    ],
                    &widths,
                );
                print_row(
                    &[
                        prepared.spec.name.clone(),
                        rs.to_string(),
                        format!("E-{kind}"),
                        fmt_duration(enc.mean),
                        fmt_duration(enc.min),
                        fmt_duration(enc.max),
                    ],
                    &widths,
                );
            }
        }
    }

    println!();
    println!("Legend: P-EDn = PlainDBDB (same algorithms, no crypto/enclave);");
    println!("        E-EDn = EncDBDB (enclave dictionary search).");
    println!("Expected shape (paper): EncDBDB/PlainDBDB beat MonetDB (log string");
    println!("comparisons + linear integer scan vs linear string comparisons);");
    println!("E-EDn ≈ P-EDn plus a small crypto constant; ED2/5/8 ≈ ED1/4/7 plus a");
    println!("small special-search constant; ED3/6/9 grow with |D| (linear scans)");
    println!("with ED9 slowest — seconds-scale at RS=100 on repetitive columns.");
}
