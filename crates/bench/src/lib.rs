//! Shared infrastructure for the EncDBDB benchmark harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md §3 for the index). This library provides the
//! common pieces: dataset preparation (the C1/C2 synthetic twins), building
//! all dictionary variants, simple CLI parsing, timing helpers and table
//! formatting.

use colstore::column::Column;
use colstore::stats::ColumnStats;
use encdbdb_crypto::hkdf::derive_column_key;
use encdbdb_crypto::{Key128, Pae};
use encdict::build::{build_encrypted, build_plain, BuildParams};
use encdict::{EdKind, EncryptedDictionary, PlainDictionary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use workload::spec::{sorted_unique_values, ColumnSpec};

/// Deterministic master key used across the harness.
pub fn master_key() -> Key128 {
    Key128::from_bytes([0x42; 16])
}

/// The column key for the harness table/column naming convention.
pub fn column_pae(column_name: &str) -> Pae {
    Pae::new(&derive_column_key(&master_key(), "bw", column_name))
}

/// Build parameters for the harness.
pub fn build_params(column_name: &str, bs_max: usize) -> BuildParams {
    BuildParams {
        table_name: "bw".to_string(),
        col_name: column_name.to_string(),
        bs_max,
    }
}

/// Simple `--key value` / `--flag` CLI parsing (no external crates).
#[derive(Debug, Clone)]
pub struct CliArgs {
    args: Vec<String>,
}

impl CliArgs {
    /// Parses the process arguments.
    pub fn from_env() -> Self {
        CliArgs {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// Creates CLI args from a vector (tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        CliArgs { args }
    }

    /// Value of `--name <value>`, if present.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// Parses `--name <n>` as usize with a default (underscores allowed).
    pub fn usize_of(&self, name: &str, default: usize) -> usize {
        self.value_of(name)
            .map(|v| v.replace('_', "").parse().unwrap_or(default))
            .unwrap_or(default)
    }

    /// Whether `--name` is present as a bare flag.
    pub fn has_flag(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.args.iter().any(|a| a == &flag)
    }
}

/// A prepared evaluation column: population spec, materialized data and the
/// sorted unique values (for RS query generation).
pub struct PreparedColumn {
    /// The population spec this column was drawn from.
    pub spec: ColumnSpec,
    /// The materialized plaintext column.
    pub column: Column,
    /// `sorted(un(C))`.
    pub sorted_uniques: Vec<String>,
    /// Occurrence statistics.
    pub stats: ColumnStats,
}

/// Generates the C1 twin scaled to `rows`.
pub fn prepare_c1(rows: usize, seed: u64) -> PreparedColumn {
    prepare(ColumnSpec::c1_full().scaled(rows), seed)
}

/// Generates the C2 twin scaled to `rows`.
pub fn prepare_c2(rows: usize, seed: u64) -> PreparedColumn {
    prepare(ColumnSpec::c2_full().scaled(rows), seed)
}

/// Generates a column for an arbitrary spec.
pub fn prepare(spec: ColumnSpec, seed: u64) -> PreparedColumn {
    let mut rng = StdRng::seed_from_u64(seed);
    let column = workload::generate(&spec, &mut rng);
    let sorted_uniques = sorted_unique_values(&spec);
    let stats = ColumnStats::of(&column);
    PreparedColumn {
        spec,
        column,
        sorted_uniques,
        stats,
    }
}

/// Builds the encrypted dictionary + attribute vector for one kind.
pub fn build_ed(
    prepared: &PreparedColumn,
    kind: EdKind,
    bs_max: usize,
    seed: u64,
) -> (EncryptedDictionary, colstore::dictionary::AttributeVector) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sk_d = derive_column_key(&master_key(), "bw", &prepared.spec.name);
    build_encrypted(
        &prepared.column,
        kind,
        &build_params(&prepared.spec.name, bs_max),
        &sk_d,
        &mut rng,
    )
    .expect("harness columns build cleanly")
}

/// Builds the PlainDBDB twin for one kind.
pub fn build_plain_ed(
    prepared: &PreparedColumn,
    kind: EdKind,
    bs_max: usize,
    seed: u64,
) -> (PlainDictionary, colstore::dictionary::AttributeVector) {
    let mut rng = StdRng::seed_from_u64(seed);
    build_plain(
        &prepared.column,
        kind,
        &build_params(&prepared.spec.name, bs_max),
        &mut rng,
    )
    .expect("harness columns build cleanly")
}

/// Latency summary over a batch of query runs.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean: Duration,
    /// Minimum latency.
    pub min: Duration,
    /// Maximum latency.
    pub max: Duration,
    /// Number of runs.
    pub runs: usize,
}

impl LatencySummary {
    /// Summarizes a batch of measured durations.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch.
    pub fn of(durations: &[Duration]) -> Self {
        assert!(!durations.is_empty(), "summary needs at least one run");
        let total: Duration = durations.iter().sum();
        LatencySummary {
            mean: total / durations.len() as u32,
            min: *durations.iter().min().expect("non-empty"),
            max: *durations.iter().max().expect("non-empty"),
            runs: durations.len(),
        }
    }
}

/// Times one closure invocation.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a byte count like the paper's tables (MB with one decimal).
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1_000_000 {
        format!("{:.1} MB", bytes as f64 / 1e6)
    } else if bytes >= 1_000 {
        format!("{:.1} kB", bytes as f64 / 1e3)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a duration adaptively (ms below a second, s above).
pub fn fmt_duration(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1e3)
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.1} µs", ms * 1e3)
    }
}

/// Prints a markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("| {} |", row.join(" | "));
}

/// Prints a table header with separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_column_is_consistent() {
        let p = prepare_c2(10_000, 1);
        assert_eq!(p.column.len(), 10_000);
        assert_eq!(p.stats.unique_count(), p.spec.unique_values);
        assert_eq!(p.sorted_uniques.len(), p.spec.unique_values);
    }

    #[test]
    fn build_ed_roundtrips() {
        let p = prepare_c2(2_000, 2);
        let (dict, av) = build_ed(&p, EdKind::Ed1, 10, 3);
        assert_eq!(av.len(), 2_000);
        assert_eq!(dict.len(), p.spec.unique_values);
    }

    #[test]
    fn latency_summary_math() {
        let s = LatencySummary::of(&[Duration::from_millis(1), Duration::from_millis(3)]);
        assert_eq!(s.mean, Duration::from_millis(2));
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.max, Duration::from_millis(3));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(22_000_000), "22.0 MB");
        assert_eq!(fmt_bytes(512), "512 B");
        assert!(fmt_duration(Duration::from_micros(500)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains("s"));
    }

    #[test]
    fn cli_parsing() {
        let cli = CliArgs::from_vec(vec!["--rows".into(), "1_000".into(), "--full".into()]);
        assert_eq!(cli.usize_of("rows", 5), 1000);
        assert_eq!(cli.usize_of("queries", 7), 7);
        assert!(cli.has_flag("full"));
        assert!(!cli.has_flag("quick"));
    }
}
