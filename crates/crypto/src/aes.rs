//! AES-128 block cipher (encryption direction only).
//!
//! GCM mode uses the forward cipher exclusively (CTR keystream + GHASH key),
//! so the inverse cipher is not implemented. The implementation is a
//! straightforward table-free byte-oriented one: the S-box is a constant
//! table (computed once at first use), `MixColumns` uses `xtime`
//! multiplication. This is slower than AES-NI, which the paper's
//! implementation uses; see DESIGN.md for why the substitution preserves the
//! evaluation's shape.

use crate::keys::Key128;

/// Number of 4-byte words in an AES-128 key.
const NK: usize = 4;
/// Number of rounds for AES-128.
const NR: usize = 10;

/// The AES S-box, generated at compile time from the multiplicative inverse
/// in GF(2^8) followed by the affine transformation.
static SBOX: [u8; 256] = build_sbox();

const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

const fn gf_inv(a: u8) -> u8 {
    // a^254 in GF(2^8) via square-and-multiply; inverse of 0 is defined as 0.
    if a == 0 {
        return 0;
    }
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let inv = gf_inv(i as u8);
        // Affine transformation: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let mut x = inv;
        let mut r = inv;
        let mut j = 0;
        while j < 4 {
            x = x.rotate_left(1);
            r ^= x;
            j += 1;
        }
        sbox[i] = r ^ 0x63;
        i += 1;
    }
    sbox
}

#[inline]
fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

/// An expanded AES-128 key schedule ready to encrypt 16-byte blocks.
///
/// # Example
///
/// ```
/// use encdbdb_crypto::aes::Aes128;
/// use encdbdb_crypto::keys::Key128;
///
/// let cipher = Aes128::new(&Key128::from_bytes([0u8; 16]));
/// let mut block = [0u8; 16];
/// cipher.encrypt_block(&mut block);
/// // FIPS-197 / NIST test vector for the all-zero key and block.
/// assert_eq!(block[0], 0x66);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    pub fn new(key: &Key128) -> Self {
        let key = key.as_bytes();
        let mut w = [[0u8; 4]; 4 * (NR + 1)];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        let mut rcon: u8 = 1;
        for i in NK..4 * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    #[inline]
    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    #[inline]
    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: state[4*c + r].
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    #[inline]
    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            let t = col[0] ^ col[1] ^ col[2] ^ col[3];
            for r in 0..4 {
                state[4 * c + r] = col[r] ^ t ^ xtime(col[r] ^ col[(r + 1) % 4]);
            }
        }
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..NR {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[NR]);
    }

    /// Encrypts a block and returns the result, leaving the input untouched.
    pub fn encrypt_block_copy(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

impl Drop for Aes128 {
    fn drop(&mut self) {
        for rk in &mut self.round_keys {
            for b in rk.iter_mut() {
                // Volatile-free best-effort zeroization; good enough for a
                // simulation (no compiler fence needed for correctness).
                *b = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        // Spot checks against the published AES S-box.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B example.
        let key = Key128::from_bytes(hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap());
        let cipher = Aes128::new(&key);
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn nist_sp80038a_ecb_vector() {
        // NIST SP 800-38A F.1.1 ECB-AES128 block #1.
        let key = Key128::from_bytes(hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap());
        let cipher = Aes128::new(&key);
        let mut block: [u8; 16] = hex("6bc1bee22e409f96e93d7e117393172a").try_into().unwrap();
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3ad77bb40d7a3660a89ecaf32466ef97"));
    }

    #[test]
    fn all_zero_vector() {
        let cipher = Aes128::new(&Key128::from_bytes([0u8; 16]));
        let out = cipher.encrypt_block_copy(&[0u8; 16]);
        assert_eq!(out.to_vec(), hex("66e94bd4ef8a2c3b884cfa59ca342b2e"));
    }

    #[test]
    fn debug_redacts_key() {
        let cipher = Aes128::new(&Key128::from_bytes([0xAA; 16]));
        let dbg = format!("{cipher:?}");
        assert!(!dbg.contains("170")); // 0xAA
        assert!(dbg.contains("Aes128"));
    }

    #[test]
    fn different_keys_different_ciphertexts() {
        let c1 = Aes128::new(&Key128::from_bytes([1u8; 16]));
        let c2 = Aes128::new(&Key128::from_bytes([2u8; 16]));
        let b = [9u8; 16];
        assert_ne!(c1.encrypt_block_copy(&b), c2.encrypt_block_copy(&b));
    }
}
