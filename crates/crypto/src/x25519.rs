//! X25519 Diffie–Hellman key agreement (RFC 7748).
//!
//! Used by the simulated remote-attestation flow (`enclave-sim::channel`) to
//! establish the secure channel over which the data owner provisions `SK_DB`
//! into the enclave (§4.2 step 2 of the paper).
//!
//! Field arithmetic uses the standard radix-2^51 representation: five
//! 51-bit limbs with `u128` intermediate products.

use crate::keys::Key256;

/// The X25519 base point (u = 9).
pub const BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Field element modulo 2^255 - 19, five 51-bit limbs.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

const MASK51: u64 = (1 << 51) - 1;

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| -> u64 {
            let mut v = [0u8; 8];
            v.copy_from_slice(b);
            u64::from_le_bytes(v)
        };
        Fe([
            load(&bytes[0..8]) & MASK51,
            (load(&bytes[6..14]) >> 3) & MASK51,
            (load(&bytes[12..20]) >> 6) & MASK51,
            (load(&bytes[19..27]) >> 1) & MASK51,
            (load(&bytes[24..32]) >> 12) & MASK51,
        ])
    }

    fn to_bytes(mut self) -> [u8; 32] {
        self = self.carry();
        self = self.carry();
        // Canonical reduction: add 19 and check for overflow past 2^255.
        let mut q = (self.0[0].wrapping_add(19)) >> 51;
        q = (self.0[1].wrapping_add(q)) >> 51;
        q = (self.0[2].wrapping_add(q)) >> 51;
        q = (self.0[3].wrapping_add(q)) >> 51;
        q = (self.0[4].wrapping_add(q)) >> 51;
        self.0[0] = self.0[0].wrapping_add(19u64.wrapping_mul(q));
        let mut carry = self.0[0] >> 51;
        self.0[0] &= MASK51;
        for i in 1..5 {
            self.0[i] = self.0[i].wrapping_add(carry);
            carry = self.0[i] >> 51;
            self.0[i] &= MASK51;
        }
        let mut out = [0u8; 32];
        let limbs = self.0;
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for limb in limbs {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 && idx < 32 {
                out[idx] = (acc & 0xff) as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        if idx < 32 {
            // Flush the final partial byte (5 * 51 = 255 bits = 31 bytes + 7 bits).
            out[idx] = acc as u8;
        }
        out
    }

    fn carry(mut self) -> Fe {
        let mut c: u64 = 0;
        for i in 0..5 {
            self.0[i] = self.0[i].wrapping_add(c);
            c = self.0[i] >> 51;
            self.0[i] &= MASK51;
        }
        self.0[0] = self.0[0].wrapping_add(19 * c);
        self
    }

    fn add(self, rhs: Fe) -> Fe {
        let mut r = self.0;
        for (r, b) in r.iter_mut().zip(rhs.0) {
            *r += b;
        }
        Fe(r).carry()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 4*p before subtracting so the limb differences stay positive.
        let pad = [
            0xfffffffffffda * 2,
            0xffffffffffffe * 2,
            0xffffffffffffe * 2,
            0xffffffffffffe * 2,
            0xffffffffffffe * 2,
        ];
        let mut r = [0u64; 5];
        for i in 0..5 {
            r[i] = self.0[i] + pad[i] - rhs.0[i];
        }
        Fe(r).carry().carry()
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = self.0.map(|x| x as u128);
        let b = rhs.0.map(|x| x as u128);
        let mut t = [0u128; 5];
        for i in 0..5 {
            for j in 0..5 {
                let prod = a[i] * b[j];
                if i + j < 5 {
                    t[i + j] += prod;
                } else {
                    t[i + j - 5] += prod * 19;
                }
            }
        }
        let mut r = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = t[i] + carry;
            r[i] = (v as u64) & MASK51;
            carry = v >> 51;
        }
        let mut fe = Fe(r);
        fe.0[0] = fe.0[0].wrapping_add(19 * (carry as u64));
        fe.carry()
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn mul_small(self, k: u64) -> Fe {
        let t = self.0.map(|limb| (limb as u128) * (k as u128));
        let mut r = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = t[i] + carry;
            r[i] = (v as u64) & MASK51;
            carry = v >> 51;
        }
        let mut fe = Fe(r);
        fe.0[0] = fe.0[0].wrapping_add(19 * (carry as u64));
        fe.carry()
    }

    /// Inversion via Fermat: a^(p-2).
    fn invert(self) -> Fe {
        let mut result = Fe::ONE;
        let mut base = self;
        // p - 2 = 2^255 - 21; its binary expansion is all ones except bits 1 and 3... use
        // the straightforward bit loop over the constant.
        let exp: [u8; 32] = {
            let mut e = [0xffu8; 32];
            e[0] = 0xeb; // 2^255 - 21 little-endian: ...ffffeb
            e[31] = 0x7f;
            e
        };
        for byte in exp.iter() {
            let mut b = *byte;
            for _ in 0..8 {
                if b & 1 == 1 {
                    result = result.mul(base);
                }
                base = base.square();
                b >>= 1;
            }
        }
        result
    }

    /// Constant-time conditional swap.
    fn cswap(a: &mut Fe, b: &mut Fe, swap: u64) {
        let mask = 0u64.wrapping_sub(swap);
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

fn clamp(scalar: &[u8; 32]) -> [u8; 32] {
    let mut s = *scalar;
    s[0] &= 248;
    s[31] &= 127;
    s[31] |= 64;
    s
}

/// Computes the X25519 function: scalar multiplication on Curve25519's
/// Montgomery u-line.
///
/// # Example
///
/// ```
/// use encdbdb_crypto::x25519::{x25519, BASEPOINT};
/// let alice_secret = [0x11u8; 32];
/// let bob_secret = [0x22u8; 32];
/// let alice_public = x25519(&alice_secret, &BASEPOINT);
/// let bob_public = x25519(&bob_secret, &BASEPOINT);
/// assert_eq!(
///     x25519(&alice_secret, &bob_public),
///     x25519(&bob_secret, &alice_public),
/// );
/// ```
pub fn x25519(scalar: &[u8; 32], point: &[u8; 32]) -> [u8; 32] {
    let k = clamp(scalar);
    let mut u = *point;
    u[31] &= 127; // mask the high bit per RFC 7748
    let x1 = Fe::from_bytes(&u);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap: u64 = 0;

    for t in (0..255).rev() {
        let k_t = ((k[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= k_t;
        Fe::cswap(&mut x2, &mut x3, swap);
        Fe::cswap(&mut z2, &mut z3, swap);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121665)));
    }
    Fe::cswap(&mut x2, &mut x3, swap);
    Fe::cswap(&mut z2, &mut z3, swap);

    x2.mul(z2.invert()).to_bytes()
}

/// Derives the public key for `secret`.
pub fn public_key(secret: &Key256) -> [u8; 32] {
    x25519(secret.as_bytes(), &BASEPOINT)
}

/// Computes the shared secret between `secret` and a peer public key.
pub fn shared_secret(secret: &Key256, peer_public: &[u8; 32]) -> Key256 {
    Key256::from_bytes(x25519(secret.as_bytes(), peer_public))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn hex(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    #[test]
    fn fe_roundtrip() {
        let a: [u8; 32] = {
            let mut v = [0u8; 32];
            for (i, b) in v.iter_mut().enumerate() {
                *b = (i + 1) as u8;
            }
            v
        };
        assert_eq!(Fe::from_bytes(&a).to_bytes(), a);
    }

    #[test]
    fn fe_arith_reference() {
        let a = hex("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
        let b = hex("7765666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f80818203");
        let fa = Fe::from_bytes(&a);
        let fb = Fe::from_bytes(&b);
        assert_eq!(
            fa.mul(fb).to_bytes(),
            hex("c38300c7b19b5fd8e0530ce5b862bda3f07e29cb3e5f07125aba0d2ff946f358"),
            "mul"
        );
        assert_eq!(
            fa.add(fb).to_bytes(),
            hex("7867696b6d6f71737577797b7d7f81838587898b8d8f91939597999b9d9fa123"),
            "add"
        );
        assert_eq!(
            fa.sub(fb).to_bytes(),
            hex("8a9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c9c1c"),
            "sub"
        );
        assert_eq!(
            fa.invert().to_bytes(),
            hex("e5faf5a435158b4cc68d583058fece071d8b8d20ed6abf17651a73c28fec414d"),
            "inv"
        );
    }

    #[test]
    fn rfc7748_vector_1() {
        let scalar = hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(&scalar, &point);
        assert_eq!(
            out,
            hex("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")
        );
    }

    #[test]
    fn rfc7748_vector_2() {
        let scalar = hex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = hex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = x25519(&scalar, &point);
        assert_eq!(
            out,
            hex("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957")
        );
    }

    #[test]
    fn rfc7748_alice_bob() {
        let alice_sk = hex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_sk = hex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pk = x25519(&alice_sk, &BASEPOINT);
        let bob_pk = x25519(&bob_sk, &BASEPOINT);
        assert_eq!(
            alice_pk,
            hex("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        );
        assert_eq!(
            bob_pk,
            hex("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        );
        let shared = hex("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
        assert_eq!(x25519(&alice_sk, &bob_pk), shared);
        assert_eq!(x25519(&bob_sk, &alice_pk), shared);
    }

    #[test]
    fn random_key_agreement() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..8 {
            let mut a = [0u8; 32];
            let mut b = [0u8; 32];
            rng.fill_bytes(&mut a);
            rng.fill_bytes(&mut b);
            let a_key = Key256::from_bytes(a);
            let b_key = Key256::from_bytes(b);
            let shared_ab = shared_secret(&a_key, &public_key(&b_key));
            let shared_ba = shared_secret(&b_key, &public_key(&a_key));
            assert_eq!(shared_ab.as_bytes(), shared_ba.as_bytes());
        }
    }
}
