//! Key newtypes.
//!
//! Keys zeroize their memory on drop and never appear in `Debug` output.
//! `Key128` is used for AES-128-GCM data keys (`SK_DB`, `SK_D`); `Key256`
//! for HMAC/HKDF secrets and X25519 scalars.

use rand::RngCore;

macro_rules! key_type {
    ($(#[$doc:meta])* $name:ident, $len:expr) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq)]
        pub struct $name([u8; $len]);

        impl $name {
            /// Constructs a key from raw bytes.
            pub fn from_bytes(bytes: [u8; $len]) -> Self {
                Self(bytes)
            }

            /// Constructs a key from a slice.
            ///
            /// # Errors
            ///
            /// Returns [`crate::CryptoError::InvalidLength`] if `bytes` is not
            /// exactly the key length.
            pub fn from_slice(bytes: &[u8]) -> Result<Self, crate::CryptoError> {
                if bytes.len() != $len {
                    return Err(crate::CryptoError::InvalidLength {
                        got: bytes.len(),
                        expected: $len,
                    });
                }
                let mut k = [0u8; $len];
                k.copy_from_slice(bytes);
                Ok(Self(k))
            }

            /// Generates a fresh random key from `rng`.
            pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut k = [0u8; $len];
                rng.fill_bytes(&mut k);
                Self(k)
            }

            /// Returns the raw key bytes.
            pub fn as_bytes(&self) -> &[u8; $len] {
                &self.0
            }

            /// Length of the key in bytes.
            pub const LEN: usize = $len;
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "(<redacted>)"))
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                for b in self.0.iter_mut() {
                    *b = 0;
                }
            }
        }
    };
}

key_type!(
    /// A 128-bit secret key (AES-128-GCM).
    ///
    /// # Example
    ///
    /// ```
    /// use encdbdb_crypto::keys::Key128;
    /// let key = Key128::from_bytes([0x42; 16]);
    /// assert_eq!(key.as_bytes().len(), 16);
    /// ```
    Key128,
    16
);

key_type!(
    /// A 256-bit secret key (HMAC/HKDF secrets, X25519 scalars).
    ///
    /// # Example
    ///
    /// ```
    /// use encdbdb_crypto::keys::Key256;
    /// let key = Key256::from_bytes([0x42; 32]);
    /// assert_eq!(key.as_bytes().len(), 32);
    /// ```
    Key256,
    32
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn debug_never_reveals_bytes() {
        let k = Key128::from_bytes([0xAB; 16]);
        assert_eq!(format!("{k:?}"), "Key128(<redacted>)");
        let k = Key256::from_bytes([0xCD; 32]);
        assert_eq!(format!("{k:?}"), "Key256(<redacted>)");
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(Key128::from_slice(&[0u8; 16]).is_ok());
        assert!(Key128::from_slice(&[0u8; 15]).is_err());
        assert!(Key256::from_slice(&[0u8; 32]).is_ok());
        assert!(Key256::from_slice(&[0u8; 31]).is_err());
    }

    #[test]
    fn generate_is_seeded_deterministic() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        assert_eq!(Key128::generate(&mut r1), Key128::generate(&mut r2));
        let mut r3 = StdRng::seed_from_u64(2);
        assert_ne!(Key128::generate(&mut r1), Key128::generate(&mut r3));
    }
}
