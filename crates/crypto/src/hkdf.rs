//! HKDF-SHA256 (RFC 5869) and the paper's column-key derivation.
//!
//! §4.2 step 3 of the paper: "Each encrypted dictionary is encrypted with an
//! individual key `SK_D`, which is derived from `SK_DB`, the table name, and
//! the column name." [`derive_column_key`] implements exactly that.

use crate::hmac::hmac_sha256;
use crate::keys::{Key128, Key256};
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand producing `out.len()` bytes (at most `255 * 32`).
///
/// # Panics
///
/// Panics if more than `255 * 32` output bytes are requested.
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * DIGEST_LEN, "hkdf output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut written = 0usize;
    while written < out.len() {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (out.len() - written).min(DIGEST_LEN);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// One-shot HKDF (extract + expand).
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    let prk = extract(salt, ikm);
    expand(&prk, info, out);
}

/// Derives the per-column key `SK_D = DeriveKey(SK_DB, tableName, colName)`.
///
/// Table and column names are length-prefixed inside the HKDF `info` input so
/// that `("ab","c")` and `("a","bc")` derive unrelated keys.
///
/// # Example
///
/// ```
/// use encdbdb_crypto::hkdf::derive_column_key;
/// use encdbdb_crypto::keys::Key128;
///
/// let skdb = Key128::from_bytes([1; 16]);
/// let a = derive_column_key(&skdb, "sales", "price");
/// let b = derive_column_key(&skdb, "sales", "region");
/// assert_ne!(a.as_bytes(), b.as_bytes());
/// ```
pub fn derive_column_key(skdb: &Key128, table_name: &str, col_name: &str) -> Key128 {
    let mut info = Vec::with_capacity(16 + table_name.len() + col_name.len());
    info.extend_from_slice(b"encdbdb:column-key:v1");
    info.extend_from_slice(&(table_name.len() as u32).to_be_bytes());
    info.extend_from_slice(table_name.as_bytes());
    info.extend_from_slice(&(col_name.len() as u32).to_be_bytes());
    info.extend_from_slice(col_name.as_bytes());
    let mut out = [0u8; 16];
    hkdf(b"encdbdb-hkdf-salt", skdb.as_bytes(), &info, &mut out);
    Key128::from_bytes(out)
}

/// Derives a 256-bit key for MAC/secure-channel purposes.
pub fn derive_key256(secret: &[u8], info: &[u8]) -> Key256 {
    let mut out = [0u8; 32];
    hkdf(b"encdbdb-hkdf-salt", secret, info, &mut out);
    Key256::from_bytes(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0u8..=12).collect();
        let info: Vec<u8> = (0xf0u8..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_3_no_salt_no_info() {
        let ikm = [0x0b; 22];
        let prk = extract(&[], &ikm);
        let mut okm = [0u8; 42];
        expand(&prk, &[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn column_keys_are_domain_separated() {
        let skdb = Key128::from_bytes([9; 16]);
        // ("ab","c") vs ("a","bc") must differ thanks to length prefixes.
        let k1 = derive_column_key(&skdb, "ab", "c");
        let k2 = derive_column_key(&skdb, "a", "bc");
        assert_ne!(k1.as_bytes(), k2.as_bytes());
    }

    #[test]
    fn column_key_is_deterministic() {
        let skdb = Key128::from_bytes([9; 16]);
        assert_eq!(
            derive_column_key(&skdb, "t", "c").as_bytes(),
            derive_column_key(&skdb, "t", "c").as_bytes()
        );
    }

    #[test]
    fn different_master_keys_derive_different_column_keys() {
        let a = derive_column_key(&Key128::from_bytes([1; 16]), "t", "c");
        let b = derive_column_key(&Key128::from_bytes([2; 16]), "t", "c");
        assert_ne!(a.as_bytes(), b.as_bytes());
    }
}
