//! Cryptographic substrate for the EncDBDB reproduction.
//!
//! The paper relies on hardware-supported AES-128-GCM as its probabilistic
//! authenticated encryption (PAE, §2.3) and on SGX's attestation machinery
//! for key provisioning. No external crypto crates are available in this
//! environment, so this crate implements everything from scratch in pure
//! Rust:
//!
//! * [`aes`] — AES-128 block cipher (encryption direction; GCM needs no
//!   inverse cipher).
//! * [`gcm`] — AES-128-GCM [`gcm::Pae`], the paper's PAE scheme, plus the
//!   [`gcm::Ciphertext`] wire format (`IV(12) ‖ body ‖ TAG(16)`).
//! * [`sha256`], [`hmac`], [`hkdf`] — hashing and key derivation; the
//!   per-column key `SK_D = DeriveKey(SK_DB, table, column)` of §4.2 is
//!   [`hkdf::derive_column_key`].
//! * [`x25519`] — Curve25519 Diffie–Hellman used by the simulated remote
//!   attestation channel of the `enclave-sim` crate.
//! * [`ct`] — constant-time comparison helpers.
//! * [`keys`] — key newtypes that zeroize on drop and redact in `Debug`.
//!
//! # Example
//!
//! ```
//! use encdbdb_crypto::gcm::Pae;
//! use encdbdb_crypto::keys::Key128;
//!
//! let key = Key128::from_bytes([7u8; 16]);
//! let pae = Pae::new(&key);
//! let ct = pae.encrypt(&[1u8; 12], b"value", b"");
//! assert_eq!(pae.decrypt(&ct, b"").unwrap(), b"value");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ct;
pub mod error;
pub mod gcm;
pub mod hkdf;
pub mod hmac;
pub mod keys;
pub mod sha256;
pub mod x25519;

pub use error::CryptoError;
pub use gcm::{Ciphertext, Pae};
pub use keys::{Key128, Key256};
