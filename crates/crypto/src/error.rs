//! Error types for the crypto crate.

use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// Authentication tag verification failed during PAE decryption.
    ///
    /// Returned whenever a ciphertext was truncated, tampered with, or
    /// decrypted under the wrong key — the three cases are deliberately
    /// indistinguishable.
    TagMismatch,
    /// Ciphertext is too short to contain an IV and a tag.
    Truncated {
        /// Number of bytes that were provided.
        got: usize,
        /// Minimum number of bytes a well-formed ciphertext has.
        need: usize,
    },
    /// A key or point had an invalid length.
    InvalidLength {
        /// Number of bytes that were provided.
        got: usize,
        /// Expected number of bytes.
        expected: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::TagMismatch => write!(f, "authentication tag mismatch"),
            CryptoError::Truncated { got, need } => {
                write!(
                    f,
                    "ciphertext truncated: got {got} bytes, need at least {need}"
                )
            }
            CryptoError::InvalidLength { got, expected } => {
                write!(f, "invalid length: got {got} bytes, expected {expected}")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msgs = [
            CryptoError::TagMismatch.to_string(),
            CryptoError::Truncated { got: 3, need: 28 }.to_string(),
            CryptoError::InvalidLength {
                got: 1,
                expected: 16,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
