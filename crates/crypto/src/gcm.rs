//! AES-128-GCM: the paper's probabilistic authenticated encryption (PAE).
//!
//! §2.3: *"PAE Enc takes a secret key SK, a random initialization vector IV
//! and a plaintext value v as input and returns a ciphertext c. PAE Dec takes
//! SK and c as input and returns v iff v was encrypted with PAE Enc under the
//! initialization vector IV and the secret key SK. AES-128 in GCM mode can be
//! used as a PAE implementation."*
//!
//! The wire format produced by [`Pae::encrypt`] is `IV(12) ‖ body ‖ TAG(16)`,
//! i.e. 28 bytes of overhead per value — this is the constant that drives the
//! "encrypted file" rows of the paper's Table 6.

use crate::aes::Aes128;
use crate::ct::ct_eq;
use crate::error::CryptoError;
use crate::keys::Key128;
use rand::RngCore;

/// IV length in bytes (96-bit nonces, the GCM fast path).
pub const IV_LEN: usize = 12;
/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 16;
/// Total ciphertext expansion over the plaintext length.
pub const OVERHEAD: usize = IV_LEN + TAG_LEN;

/// GHASH: universal hashing over GF(2^128) using a 4-bit table.
#[derive(Clone)]
struct GHash {
    /// Precomputed table `m[i] = (i as 4-bit poly) * H` for the high nibble
    /// method.
    table: [[u64; 2]; 16],
}

impl GHash {
    fn new(h: [u8; 16]) -> Self {
        // Represent elements as two u64 halves (big-endian bit order as per
        // the GCM spec: bit 0 is the most significant bit of byte 0).
        let h_hi = u64::from_be_bytes(h[..8].try_into().unwrap());
        let h_lo = u64::from_be_bytes(h[8..].try_into().unwrap());
        let mut table = [[0u64; 2]; 16];
        // table[1] = H; table[i] built by conditional xor of shifted H.
        // Build via: table[2^k * ...] using right-shift (multiplication by x).
        table[8] = [h_hi, h_lo]; // 0b1000 ≙ 1 * H (x^0 coefficient in the nibble's MSB)
        let mut v = [h_hi, h_lo];
        for i in [4usize, 2, 1] {
            v = Self::mul_x(v);
            table[i] = v;
        }
        for i in [2usize, 4, 8] {
            for j in 1..i {
                table[i + j] = [table[i][0] ^ table[j][0], table[i][1] ^ table[j][1]];
            }
        }
        GHash { table }
    }

    /// Multiplies a field element by x (one right shift in GCM bit order),
    /// reducing modulo x^128 + x^7 + x^2 + x + 1.
    #[inline]
    fn mul_x(v: [u64; 2]) -> [u64; 2] {
        let carry = v[1] & 1;
        let mut lo = (v[1] >> 1) | (v[0] << 63);
        let mut hi = v[0] >> 1;
        if carry != 0 {
            hi ^= 0xe100_0000_0000_0000;
        }
        // no-op to keep clippy happy about the pattern
        lo ^= 0;
        [hi, lo]
    }

    /// Multiplies `x` by the hash key H using the 4-bit table method.
    fn mul_h(&self, x: [u64; 2]) -> [u64; 2] {
        // Reduction table for shifting by 4 bits: R[i] = i * (reduction poly
        // folded), standard values from the Shoup 4-bit method.
        const R: [u64; 16] = [
            0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0, 0xe100, 0xfd20, 0xd940,
            0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
        ];
        let mut z = [0u64; 2];
        let bytes = [x[0].to_be_bytes(), x[1].to_be_bytes()];
        // Process nibbles from the last byte to the first.
        for half in [1usize, 0] {
            for byte_idx in (0..8).rev() {
                let byte = bytes[half][byte_idx];
                for nibble in [byte & 0x0f, byte >> 4] {
                    // z = z * x^4 (shift right by 4 with reduction) then add table[nibble]
                    let rem = (z[1] & 0x0f) as usize;
                    z[1] = (z[1] >> 4) | (z[0] << 60);
                    z[0] = (z[0] >> 4) ^ (R[rem] << 48);
                    let t = self.table[nibble as usize];
                    z[0] ^= t[0];
                    z[1] ^= t[1];
                }
            }
        }
        z
    }

    /// GHASH over `aad` and `ct` with standard GCM length block.
    fn ghash(&self, aad: &[u8], ct: &[u8]) -> [u8; 16] {
        let mut y = [0u64; 2];
        let absorb = |data: &[u8], y: &mut [u64; 2]| {
            for chunk in data.chunks(16) {
                let mut block = [0u8; 16];
                block[..chunk.len()].copy_from_slice(chunk);
                y[0] ^= u64::from_be_bytes(block[..8].try_into().unwrap());
                y[1] ^= u64::from_be_bytes(block[8..].try_into().unwrap());
                *y = self.mul_h(*y);
            }
        };
        absorb(aad, &mut y);
        absorb(ct, &mut y);
        let mut len_block = [0u8; 16];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((ct.len() as u64) * 8).to_be_bytes());
        y[0] ^= u64::from_be_bytes(len_block[..8].try_into().unwrap());
        y[1] ^= u64::from_be_bytes(len_block[8..].try_into().unwrap());
        y = self.mul_h(y);
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&y[0].to_be_bytes());
        out[8..].copy_from_slice(&y[1].to_be_bytes());
        out
    }
}

/// A parsed PAE ciphertext: `IV ‖ body ‖ tag`.
///
/// The canonical serialized form is produced by [`Ciphertext::as_bytes`]
/// (it is stored contiguously). Values travel and rest in this format —
/// inside encrypted dictionaries, in queries, and in result columns.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ciphertext(Vec<u8>);

impl Ciphertext {
    /// Wraps raw bytes as a ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Truncated`] if `bytes` cannot contain an IV and
    /// a tag.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CryptoError> {
        if bytes.len() < OVERHEAD {
            return Err(CryptoError::Truncated {
                got: bytes.len(),
                need: OVERHEAD,
            });
        }
        Ok(Ciphertext(bytes))
    }

    /// The serialized `IV ‖ body ‖ tag` bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the ciphertext, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Length of the underlying plaintext.
    pub fn plaintext_len(&self) -> usize {
        self.0.len() - OVERHEAD
    }

    /// Total serialized length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the serialized form is empty (never true for valid values).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn iv(&self) -> &[u8] {
        &self.0[..IV_LEN]
    }

    fn body(&self) -> &[u8] {
        &self.0[IV_LEN..self.0.len() - TAG_LEN]
    }

    fn tag(&self) -> &[u8] {
        &self.0[self.0.len() - TAG_LEN..]
    }
}

impl std::fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ciphertext({} bytes)", self.0.len())
    }
}

/// Probabilistic authenticated encryption: AES-128-GCM.
///
/// One `Pae` instance holds the expanded key schedule and the GHASH table
/// for a single key — mirroring the enclave caching the derived `SK_D`
/// during a dictionary search.
#[derive(Clone)]
pub struct Pae {
    cipher: Aes128,
    ghash: GHash,
}

impl std::fmt::Debug for Pae {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pae").finish_non_exhaustive()
    }
}

impl Pae {
    /// Creates a PAE instance for `key`.
    pub fn new(key: &Key128) -> Self {
        let cipher = Aes128::new(key);
        let h = cipher.encrypt_block_copy(&[0u8; 16]);
        Pae {
            ghash: GHash::new(h),
            cipher,
        }
    }

    fn ctr_xor(&self, iv: &[u8], data: &mut [u8]) {
        let mut counter_block = [0u8; 16];
        counter_block[..IV_LEN].copy_from_slice(iv);
        let mut ctr: u32 = 2; // counter 1 is reserved for the tag mask
        for chunk in data.chunks_mut(16) {
            counter_block[12..].copy_from_slice(&ctr.to_be_bytes());
            let keystream = self.cipher.encrypt_block_copy(&counter_block);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }

    fn tag(&self, iv: &[u8], aad: &[u8], ct: &[u8]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..IV_LEN].copy_from_slice(iv);
        j0[15] = 1;
        let mask = self.cipher.encrypt_block_copy(&j0);
        let mut tag = self.ghash.ghash(aad, ct);
        for (t, m) in tag.iter_mut().zip(mask.iter()) {
            *t ^= m;
        }
        tag
    }

    /// `PAE Enc(SK, IV, v)` with an explicit IV.
    ///
    /// Use [`Pae::encrypt_with_rng`] in production paths; explicit IVs exist
    /// for deterministic tests and for the paper's algorithm descriptions.
    pub fn encrypt(&self, iv: &[u8; IV_LEN], plaintext: &[u8], aad: &[u8]) -> Ciphertext {
        let mut out = Vec::with_capacity(plaintext.len() + OVERHEAD);
        out.extend_from_slice(iv);
        out.extend_from_slice(plaintext);
        self.ctr_xor(iv, &mut out[IV_LEN..]);
        let tag = self.tag(iv, aad, &out[IV_LEN..]);
        out.extend_from_slice(&tag);
        Ciphertext(out)
    }

    /// `PAE Enc` with a fresh random IV drawn from `rng`.
    pub fn encrypt_with_rng<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        plaintext: &[u8],
        aad: &[u8],
    ) -> Ciphertext {
        let mut iv = [0u8; IV_LEN];
        rng.fill_bytes(&mut iv);
        self.encrypt(&iv, plaintext, aad)
    }

    /// `PAE Dec(SK, c)`: decrypts and verifies authenticity.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::TagMismatch`] if the tag does not verify
    /// (wrong key, tampered ciphertext, or wrong AAD).
    pub fn decrypt(&self, ct: &Ciphertext, aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let expected = self.tag(ct.iv(), aad, ct.body());
        if !ct_eq(&expected, ct.tag()) {
            return Err(CryptoError::TagMismatch);
        }
        let mut pt = ct.body().to_vec();
        let iv: &[u8] = ct.iv();
        self.ctr_xor(iv, &mut pt);
        Ok(pt)
    }

    /// Decrypts a serialized `IV ‖ body ‖ tag` byte string.
    ///
    /// # Errors
    ///
    /// [`CryptoError::Truncated`] for malformed input, otherwise as
    /// [`Pae::decrypt`].
    pub fn decrypt_bytes(&self, bytes: &[u8], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let ct = Ciphertext::from_bytes(bytes.to_vec())?;
        self.decrypt(&ct, aad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// NIST GCM test vector: empty plaintext, empty AAD, zero key/IV.
    #[test]
    fn nist_empty_vector() {
        let pae = Pae::new(&Key128::from_bytes([0u8; 16]));
        let ct = pae.encrypt(&[0u8; 12], b"", b"");
        assert_eq!(ct.body(), b"");
        assert_eq!(ct.tag().to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    /// NIST GCM test vector: one zero block under the zero key.
    #[test]
    fn nist_single_block_vector() {
        let pae = Pae::new(&Key128::from_bytes([0u8; 16]));
        let ct = pae.encrypt(&[0u8; 12], &[0u8; 16], b"");
        assert_eq!(ct.body().to_vec(), hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(ct.tag().to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    /// NIST GCM test case 3: 4-block message.
    #[test]
    fn nist_four_block_vector() {
        let key = Key128::from_slice(&hex("feffe9928665731c6d6a8f9467308308")).unwrap();
        let iv: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let pae = Pae::new(&key);
        let ct = pae.encrypt(&iv, &pt, b"");
        assert_eq!(
            ct.body().to_vec(),
            hex("42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985")
        );
        assert_eq!(ct.tag().to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
    }

    /// NIST GCM test case 4: with AAD and a partial final block.
    #[test]
    fn nist_aad_vector() {
        let key = Key128::from_slice(&hex("feffe9928665731c6d6a8f9467308308")).unwrap();
        let iv: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let pae = Pae::new(&key);
        let ct = pae.encrypt(&iv, &pt, &aad);
        assert_eq!(
            ct.body().to_vec(),
            hex("42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091")
        );
        assert_eq!(ct.tag().to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
        assert_eq!(pae.decrypt(&ct, &aad).unwrap(), pt);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let pae = Pae::new(&Key128::from_bytes([3u8; 16]));
        let mut rng = StdRng::seed_from_u64(42);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let ct = pae.encrypt_with_rng(&mut rng, &pt, b"aad");
            assert_eq!(pae.decrypt(&ct, b"aad").unwrap(), pt, "len {len}");
            assert_eq!(ct.len(), len + OVERHEAD);
            assert_eq!(ct.plaintext_len(), len);
        }
    }

    #[test]
    fn probabilistic_encryption_differs() {
        // §2.3 / EncDB 4: "this only leads to the same ciphertexts with
        // negligible probability, even if the plaintexts are equal".
        let pae = Pae::new(&Key128::from_bytes([3u8; 16]));
        let mut rng = StdRng::seed_from_u64(7);
        let a = pae.encrypt_with_rng(&mut rng, b"Jessica", b"");
        let b = pae.encrypt_with_rng(&mut rng, b"Jessica", b"");
        assert_ne!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn tamper_detection() {
        let pae = Pae::new(&Key128::from_bytes([3u8; 16]));
        let ct = pae.encrypt(&[1u8; 12], b"secret value", b"");
        for i in 0..ct.len() {
            let mut bytes = ct.as_bytes().to_vec();
            bytes[i] ^= 0x01;
            let tampered = Ciphertext::from_bytes(bytes).unwrap();
            assert_eq!(pae.decrypt(&tampered, b""), Err(CryptoError::TagMismatch));
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let pae1 = Pae::new(&Key128::from_bytes([3u8; 16]));
        let pae2 = Pae::new(&Key128::from_bytes([4u8; 16]));
        let ct = pae1.encrypt(&[1u8; 12], b"v", b"");
        assert_eq!(pae2.decrypt(&ct, b""), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn wrong_aad_rejected() {
        let pae = Pae::new(&Key128::from_bytes([3u8; 16]));
        let ct = pae.encrypt(&[1u8; 12], b"v", b"aad1");
        assert_eq!(pae.decrypt(&ct, b"aad2"), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn truncated_rejected() {
        assert!(Ciphertext::from_bytes(vec![0u8; OVERHEAD - 1]).is_err());
        assert!(Ciphertext::from_bytes(vec![0u8; OVERHEAD]).is_ok());
    }
}
