//! HMAC-SHA256 (RFC 2104).

use crate::sha256::{Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, data)`.
///
/// Keys longer than the SHA-256 block size are hashed first, per RFC 2104.
///
/// # Example
///
/// ```
/// let tag = encdbdb_crypto::hmac::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// Incremental HMAC-SHA256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::digest(key);
            block_key[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Feeds message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Returns the 32-byte MAC.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verifies `tag` against the computed MAC in constant time.
    pub fn verify(self, tag: &[u8]) -> bool {
        let computed = self.finalize();
        crate::ct::ct_eq(&computed, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_long_key() {
        // Key longer than the block size (131 bytes of 0xaa).
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"data");
        let tag = mac.clone().finalize();
        assert!(mac.clone().verify(&tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!mac.verify(&bad));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"key", b"hello world"));
    }
}
