//! Constant-time comparison helpers.

/// Compares two byte slices in constant time with respect to content.
///
/// Returns `false` immediately if the lengths differ (length is considered
/// public). Otherwise the running time depends only on the length, not the
/// position of the first difference.
///
/// # Example
///
/// ```
/// use encdbdb_crypto::ct::ct_eq;
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// ```
#[inline]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn unequal_content() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[0], &[1]));
    }

    #[test]
    fn unequal_length() {
        assert!(!ct_eq(&[1, 2], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
    }
}
