//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds without network access (DESIGN.md §4), so this crate
//! provides the subset of the criterion API the benches under
//! `crates/bench/benches/` use: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's bootstrap statistics it runs each benchmark as an
//! adaptive timed loop: iterations are batched until one batch takes at
//! least [`TARGET_BATCH`], `sample_size` batches are measured, and the
//! median per-iteration time is reported. That is accurate enough to
//! reproduce the paper's relative comparisons (Figures 7–8) while keeping
//! `cargo bench` runtimes in seconds.
//!
//! When invoked with `--test` (as `cargo test --benches` does) every
//! benchmark body runs exactly once, so benches stay covered by CI without
//! paying measurement time.
//!
//! Setting `ENCDBDB_BENCH_JSON=<dir>` additionally persists every
//! measurement to `<dir>/BENCH_<area>.json` (`area` = the bench binary's
//! name), a machine-readable trajectory with stable benchmark ids,
//! median/p95 nanoseconds, and the `ENCDBDB_*` workload knobs in effect —
//! the committed baselines under `baselines/` are produced this way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export for parity with `criterion::black_box`.
pub use std::hint::black_box;

/// Minimum wall time per measured batch.
pub const TARGET_BATCH: Duration = Duration::from_millis(2);

/// Top-level benchmark driver, configured by [`criterion_group!`].
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        // Cargo invokes bench binaries with `--bench`; `cargo test --benches`
        // invokes them with `--test`. A bare positional argument filters by
        // benchmark id substring.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of measured batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-time budget each benchmark's measurement aims for.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into().render(None), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, f: &mut F) {
        self.run_in_group(None, id, None, None, f)
    }

    fn run_in_group<F: FnMut(&mut Bencher)>(
        &self,
        group: Option<&str>,
        id: &str,
        throughput: Option<&Throughput>,
        sample_size_override: Option<usize>,
        f: &mut F,
    ) {
        let full = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_string(),
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: sample_size_override.unwrap_or(self.sample_size),
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
            median: None,
            p95: None,
            samples: 0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test-mode {full}: ok");
            return;
        }
        match bencher.median {
            Some(per_iter) => {
                let rate = throughput.map(|t| t.rate(per_iter)).unwrap_or_default();
                println!("{full:<50} {:>12}/iter{rate}", fmt_duration(per_iter));
                emit_record(
                    &full,
                    per_iter,
                    bencher.p95.unwrap_or(per_iter),
                    bencher.samples,
                );
            }
            None => println!("{full}: no measurement (Bencher::iter never called)"),
        }
    }
}

/// Measures one benchmark body; handed to the closure by `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    median: Option<Duration>,
    p95: Option<Duration>,
    samples: usize,
}

impl Bencher {
    /// Runs `routine` in an adaptive timed loop and records the median
    /// per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: grow the batch until it takes at least TARGET_BATCH.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= TARGET_BATCH || batch >= 1 << 20 {
                break;
            }
            // Aim straight for the target rather than doubling blindly.
            let scale = (TARGET_BATCH.as_nanos() / took.as_nanos().max(1)) as u64 + 1;
            batch = (batch * scale.clamp(2, 16)).min(1 << 20);
        }
        // Measure `sample_size` batches, bounded by the measurement budget.
        let mut samples = Vec::with_capacity(self.sample_size);
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / batch as u32);
            if budget_start.elapsed() > self.measurement_time * 4 {
                break;
            }
        }
        samples.sort_unstable();
        self.median = Some(samples[samples.len() / 2]);
        self.p95 = Some(samples[(samples.len() * 95).div_ceil(100).max(1) - 1]);
        self.samples = samples.len();
    }
}

// -- JSON trajectory emit (`ENCDBDB_BENCH_JSON=<dir>`) -----------------------

/// One persisted measurement of the current bench binary.
#[derive(Debug, Clone)]
struct EmitRecord {
    id: String,
    median_ns: u64,
    p95_ns: u64,
    samples: usize,
}

/// Every measurement this process has produced so far. The whole file is
/// rewritten after each benchmark, so the trajectory on disk is complete
/// even across multiple `criterion_group!` instances in one binary.
static EMITTED: Mutex<Vec<EmitRecord>> = Mutex::new(Vec::new());

fn emit_record(full: &str, median: Duration, p95: Duration, samples: usize) {
    let Ok(dir) = std::env::var("ENCDBDB_BENCH_JSON") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let mut sink = EMITTED.lock().unwrap_or_else(|e| e.into_inner());
    sink.push(EmitRecord {
        id: full.to_string(),
        median_ns: median.as_nanos() as u64,
        p95_ns: p95.as_nanos() as u64,
        samples,
    });
    let area = bench_area();
    let mut env: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("ENCDBDB_") && k != "ENCDBDB_BENCH_JSON")
        .collect();
    env.sort();
    let json = render_bench_json(&area, &sink, &env);
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(
        std::path::Path::new(&dir).join(format!("BENCH_{area}.json")),
        json,
    );
}

/// The bench area: the binary's file stem with cargo's `-<hash>` suffix
/// stripped (`av_search-1a2b3c4d5e6f7a8b` → `av_search`).
fn bench_area() -> String {
    area_from_argv0(&std::env::args().next().unwrap_or_default())
}

fn area_from_argv0(argv0: &str) -> String {
    let stem = std::path::Path::new(argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((name, hash))
            if !name.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_bench_json(area: &str, records: &[EmitRecord], env: &[(String, String)]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n  \"area\": \"");
    out.push_str(&json_escape(area));
    out.push_str("\",\n  \"benchmarks\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"median_ns\": {}, \"p95_ns\": {}, \"samples\": {}}}",
            json_escape(&r.id),
            r.median_ns,
            r.p95_ns,
            r.samples
        ));
    }
    out.push_str("\n  ],\n  \"env\": {");
    for (i, (k, v)) in env.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": \"{}\"",
            json_escape(k),
            json_escape(v)
        ));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped override; the parent [`Criterion`] is left untouched,
    /// matching the real criterion's per-group semantics.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample size for benchmarks in this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().render(None);
        let (name, throughput) = (self.name.clone(), self.throughput.clone());
        self.criterion.run_in_group(
            Some(&name),
            &id,
            throughput.as_ref(),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().render(None);
        let (name, throughput) = (self.name.clone(), self.throughput.clone());
        self.criterion.run_in_group(
            Some(&name),
            &id,
            throughput.as_ref(),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group. (The real criterion emits summary reports here; the
    /// shim prints per-benchmark lines eagerly, so this is a no-op kept for
    /// API parity.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        match (group, &self.function, &self.parameter) {
            (_, Some(f), Some(p)) => format!("{f}/{p}"),
            (_, Some(f), None) => f.clone(),
            (_, None, Some(p)) => p.clone(),
            (Some(g), None, None) => g.to_string(),
            (None, None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

impl Throughput {
    fn rate(&self, per_iter: Duration) -> String {
        let secs = per_iter.as_secs_f64();
        if secs <= 0.0 {
            return String::new();
        }
        match self {
            Throughput::Bytes(n) => format!("  ({} B/s)", fmt_rate(*n as f64 / secs)),
            Throughput::Elements(n) => {
                format!("  ({} elem/s)", fmt_rate(*n as f64 / secs))
            }
        }
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2}K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Defines a benchmark group function, in either criterion syntax:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Criterion {
        // Small budget so unit tests stay fast.
        Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(10),
            test_mode: false,
            filter: None,
        }
    }

    #[test]
    fn bench_function_measures_something() {
        let mut c = quiet();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = quiet();
        let mut count = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.bench_function("a", |b| {
                b.iter(|| ());
                count += 1;
            });
            g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, n| {
                b.iter(|| n * 2);
                count += 1;
            });
            g.finish();
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn group_sample_size_does_not_leak_to_parent() {
        let mut c = quiet();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(7);
            g.bench_function("a", |b| b.iter(|| ()));
            g.finish();
        }
        assert_eq!(c.sample_size, 3, "group override must stay group-scoped");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = quiet();
        c.filter = Some("nomatch".into());
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = quiet();
        c.test_mode = true;
        let mut calls = 0u32;
        c.bench_function("once", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 3).render(None), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").render(None), "x");
        assert_eq!(BenchmarkId::from("plain").render(None), "plain");
    }

    #[test]
    fn iter_records_p95_and_sample_count() {
        let mut c = quiet();
        c.bench_function("stats", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            assert!(b.samples > 0);
            assert!(b.p95.expect("p95 set") >= b.median.expect("median set"));
        });
    }

    #[test]
    fn area_strips_cargo_hash_suffix() {
        assert_eq!(
            area_from_argv0("target/release/deps/av_search-1a2b3c4d5e6f7a8b"),
            "av_search"
        );
        assert_eq!(area_from_argv0("durability-0123456789abcdef"), "durability");
        // Not a 16-hex-char suffix: the dash is part of the name.
        assert_eq!(area_from_argv0("my-bench"), "my-bench");
        assert_eq!(area_from_argv0(""), "bench");
    }

    #[test]
    fn bench_json_schema_is_stable() {
        let records = vec![
            EmitRecord {
                id: "g/a".into(),
                median_ns: 100,
                p95_ns: 150,
                samples: 10,
            },
            EmitRecord {
                id: "g/\"b\"".into(),
                median_ns: 200,
                p95_ns: 250,
                samples: 5,
            },
        ];
        let env = vec![("ENCDBDB_AGG_ROWS".to_string(), "50000".to_string())];
        let json = render_bench_json("agg", &records, &env);
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"area\": \"agg\""));
        assert!(
            json.contains("\"id\": \"g/a\", \"median_ns\": 100, \"p95_ns\": 150, \"samples\": 10")
        );
        assert!(json.contains("g/\\\"b\\\""), "ids are JSON-escaped");
        assert!(json.contains("\"ENCDBDB_AGG_ROWS\": \"50000\""));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balance"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
