//! Interleaved read/write schedule generation for the dynamic-data
//! extension (paper §4.3) and its concurrency tests.
//!
//! The paper's evaluation is read-only; growing the reproduction into a
//! served system needs workloads that *interleave* inserts, deletes, range
//! reads, aggregates and compactions the way live traffic does. This
//! module draws such schedules from a weighted mix over a closed value
//! domain of fixed-width numeric strings (lexicographic order equals
//! numeric order, so range semantics match both the encrypted dictionaries
//! and a plaintext model).
//!
//! The same schedule drives the model-based differential test (each
//! operation checked against a plaintext MonetDB-style baseline) and the
//! concurrency stress harness (operations split across reader and writer
//! threads).

use rand::Rng;

/// One operation of an interleaved schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert one value.
    Insert {
        /// The inserted value (fixed-width numeric string).
        value: String,
    },
    /// Delete all rows in `[lo, hi]`.
    Delete {
        /// Inclusive lower bound.
        lo: String,
        /// Inclusive upper bound.
        hi: String,
    },
    /// Range select of all rows in `[lo, hi]`.
    RangeRead {
        /// Inclusive lower bound.
        lo: String,
        /// Inclusive upper bound.
        hi: String,
    },
    /// `COUNT(*)` + `SUM` aggregate over `[lo, hi]`.
    AggRead {
        /// Inclusive lower bound.
        lo: String,
        /// Inclusive upper bound.
        hi: String,
    },
    /// Merge the delta store into the main store.
    Compact,
}

impl Op {
    /// Renders the operation as SQL against `table`.`column`.
    pub fn render_sql(&self, table: &str, column: &str) -> Option<String> {
        match self {
            Op::Insert { value } => Some(format!("INSERT INTO {table} VALUES ('{value}')")),
            Op::Delete { lo, hi } => Some(format!(
                "DELETE FROM {table} WHERE {column} BETWEEN '{lo}' AND '{hi}'"
            )),
            Op::RangeRead { lo, hi } => Some(format!(
                "SELECT {column} FROM {table} WHERE {column} BETWEEN '{lo}' AND '{hi}'"
            )),
            Op::AggRead { lo, hi } => Some(format!(
                "SELECT COUNT(*), SUM({column}) FROM {table} \
                 WHERE {column} BETWEEN '{lo}' AND '{hi}'"
            )),
            // Compaction is an API call (`merge_table`), not SQL.
            Op::Compact => None,
        }
    }

    /// Whether the operation only reads.
    pub fn is_read(&self) -> bool {
        matches!(self, Op::RangeRead { .. } | Op::AggRead { .. })
    }
}

/// The operation mix of a schedule: relative weights plus the value
/// domain.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleSpec {
    /// Number of operations to draw.
    pub ops: usize,
    /// Relative weight of inserts.
    pub insert_weight: u32,
    /// Relative weight of range deletes.
    pub delete_weight: u32,
    /// Relative weight of range reads.
    pub read_weight: u32,
    /// Relative weight of aggregate reads.
    pub agg_weight: u32,
    /// Relative weight of compactions.
    pub compact_weight: u32,
    /// Values are drawn from `0..domain`, rendered as 4-digit strings.
    pub domain: u32,
}

impl Default for ScheduleSpec {
    fn default() -> Self {
        ScheduleSpec {
            ops: 64,
            insert_weight: 6,
            delete_weight: 1,
            read_weight: 4,
            agg_weight: 2,
            compact_weight: 1,
            domain: 100,
        }
    }
}

/// Write skew for range-partitioned stress runs: a *hot shard* — a value
/// sub-range that attracts a disproportionate share of inserts — while
/// reads stay uniform over the whole domain.
///
/// This is the workload shape that makes per-partition compaction earn
/// its keep: the hot shard's delta crosses the merge threshold over and
/// over while the cold shards' deltas barely grow, so a table-wide
/// compaction would constantly punish readers of cold data for the hot
/// shard's churn.
#[derive(Debug, Clone, Copy)]
pub struct HotShardSpec {
    /// Inclusive lower bound of the hot value range (within the domain).
    pub hot_lo: u32,
    /// Inclusive upper bound of the hot value range.
    pub hot_hi: u32,
    /// Percentage (0..=100) of inserts drawn from the hot range; the rest
    /// stay uniform over the full domain.
    pub hot_insert_pct: u32,
}

/// Draws interleaved schedules from a [`ScheduleSpec`], optionally with a
/// [`HotShardSpec`] insert skew.
#[derive(Debug, Clone)]
pub struct ScheduleGen {
    spec: ScheduleSpec,
    skew: Option<HotShardSpec>,
}

impl ScheduleGen {
    /// Creates a generator for the given mix.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero, or if the domain is empty or
    /// exceeds the 4-digit value width (which would break the
    /// lexicographic-equals-numeric-order invariant).
    pub fn new(spec: ScheduleSpec) -> Self {
        let total = spec.insert_weight
            + spec.delete_weight
            + spec.read_weight
            + spec.agg_weight
            + spec.compact_weight;
        assert!(total > 0, "at least one weight must be positive");
        assert!(spec.domain > 0, "value domain must be non-empty");
        assert!(
            spec.domain <= 10_000,
            "domain {} overflows the 4-digit value width",
            spec.domain
        );
        ScheduleGen { spec, skew: None }
    }

    /// Adds a hot-shard insert skew: `skew.hot_insert_pct` percent of
    /// inserts land in `[hot_lo, hot_hi]`; reads, deletes and aggregates
    /// keep drawing uniform bounds over the full domain.
    ///
    /// # Panics
    ///
    /// Panics if the hot range is empty, leaves the domain, or the
    /// percentage exceeds 100.
    pub fn with_hot_shard(mut self, skew: HotShardSpec) -> Self {
        assert!(skew.hot_lo <= skew.hot_hi, "hot range must be non-empty");
        assert!(
            skew.hot_hi < self.spec.domain,
            "hot range {}..={} leaves the domain {}",
            skew.hot_lo,
            skew.hot_hi,
            self.spec.domain
        );
        assert!(skew.hot_insert_pct <= 100, "percentage over 100");
        self.skew = Some(skew);
        self
    }

    /// The configured mix.
    pub fn spec(&self) -> &ScheduleSpec {
        &self.spec
    }

    fn value<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        if let Some(skew) = &self.skew {
            if rng.gen_range(0u32..100) < skew.hot_insert_pct {
                return format!("{:04}", rng.gen_range(skew.hot_lo..=skew.hot_hi));
            }
        }
        format!("{:04}", rng.gen_range(0..self.spec.domain))
    }

    fn bounds<R: Rng + ?Sized>(&self, rng: &mut R) -> (String, String) {
        let a = rng.gen_range(0..self.spec.domain);
        let b = rng.gen_range(0..self.spec.domain);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        (format!("{lo:04}"), format!("{hi:04}"))
    }

    /// Draws one operation.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Op {
        let s = &self.spec;
        let total =
            s.insert_weight + s.delete_weight + s.read_weight + s.agg_weight + s.compact_weight;
        let mut pick = rng.gen_range(0..total);
        if pick < s.insert_weight {
            return Op::Insert {
                value: self.value(rng),
            };
        }
        pick -= s.insert_weight;
        if pick < s.delete_weight {
            let (lo, hi) = self.bounds(rng);
            return Op::Delete { lo, hi };
        }
        pick -= s.delete_weight;
        if pick < s.read_weight {
            let (lo, hi) = self.bounds(rng);
            return Op::RangeRead { lo, hi };
        }
        pick -= s.read_weight;
        if pick < s.agg_weight {
            let (lo, hi) = self.bounds(rng);
            return Op::AggRead { lo, hi };
        }
        Op::Compact
    }

    /// Draws a full interleaved schedule of `spec.ops` operations.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Op> {
        (0..self.spec.ops).map(|_| self.draw(rng)).collect()
    }

    /// Draws a read-only schedule of `n` operations (the reader-thread
    /// slice of a concurrent workload).
    ///
    /// # Panics
    ///
    /// Panics if the spec draws no read operations at all (the rejection
    /// loop could never terminate).
    pub fn generate_reads<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Op> {
        assert!(
            self.spec.read_weight + self.spec.agg_weight > 0,
            "read-only schedule from a write-only mix"
        );
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let op = self.draw(rng);
            if op.is_read() {
                out.push(op);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schedules_honor_the_mix() {
        let gen = ScheduleGen::new(ScheduleSpec {
            ops: 500,
            ..ScheduleSpec::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let ops = gen.generate(&mut rng);
        assert_eq!(ops.len(), 500);
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, Op::Insert { .. }))
            .count();
        let reads = ops.iter().filter(|o| o.is_read()).count();
        let compacts = ops.iter().filter(|o| matches!(o, Op::Compact)).count();
        // 6/14 inserts, 6/14 reads (range + agg), 1/14 compactions.
        assert!(inserts > 150, "{inserts} inserts");
        assert!(reads > 150, "{reads} reads");
        assert!(compacts > 5 && compacts < 100, "{compacts} compactions");
    }

    #[test]
    fn bounds_are_ordered_and_fixed_width() {
        let gen = ScheduleGen::new(ScheduleSpec::default());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            if let Op::RangeRead { lo, hi } = gen.draw(&mut rng) {
                assert!(lo <= hi);
                assert_eq!(lo.len(), 4);
                assert_eq!(hi.len(), 4);
            }
        }
    }

    #[test]
    fn sql_rendering() {
        let op = Op::Insert {
            value: "0042".into(),
        };
        assert_eq!(
            op.render_sql("t", "v").unwrap(),
            "INSERT INTO t VALUES ('0042')"
        );
        let op = Op::AggRead {
            lo: "0001".into(),
            hi: "0099".into(),
        };
        assert!(op
            .render_sql("t", "v")
            .unwrap()
            .contains("COUNT(*), SUM(v)"));
        assert!(Op::Compact.render_sql("t", "v").is_none());
        assert!(!Op::Compact.is_read());
    }

    #[test]
    fn hot_shard_skews_inserts_but_not_reads() {
        let gen = ScheduleGen::new(ScheduleSpec {
            ops: 2000,
            ..ScheduleSpec::default()
        })
        .with_hot_shard(HotShardSpec {
            hot_lo: 80,
            hot_hi: 99,
            hot_insert_pct: 90,
        });
        let mut rng = StdRng::seed_from_u64(4);
        let ops = gen.generate(&mut rng);
        let inserts: Vec<u32> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Insert { value } => Some(value.parse().unwrap()),
                _ => None,
            })
            .collect();
        let hot = inserts.iter().filter(|&&v| (80..=99).contains(&v)).count();
        // ~90% of inserts in a 20% slice of the domain (uniform would put
        // ~20% there).
        assert!(
            hot * 100 >= inserts.len() * 80,
            "{hot}/{} hot inserts",
            inserts.len()
        );
        // Reads stay uniform: their bounds regularly leave the hot range.
        let cold_reads = ops
            .iter()
            .filter(|o| match o {
                Op::RangeRead { lo, .. } | Op::AggRead { lo, .. } => {
                    lo.parse::<u32>().unwrap() < 80
                }
                _ => false,
            })
            .count();
        assert!(cold_reads > 0, "uniform reads must touch cold shards");
    }

    #[test]
    #[should_panic(expected = "leaves the domain")]
    fn hot_shard_outside_domain_panics() {
        let _ = ScheduleGen::new(ScheduleSpec::default()).with_hot_shard(HotShardSpec {
            hot_lo: 0,
            hot_hi: 100,
            hot_insert_pct: 50,
        });
    }

    #[test]
    fn read_only_slices_contain_only_reads() {
        let gen = ScheduleGen::new(ScheduleSpec::default());
        let mut rng = StdRng::seed_from_u64(3);
        let reads = gen.generate_reads(&mut rng, 50);
        assert_eq!(reads.len(), 50);
        assert!(reads.iter().all(Op::is_read));
    }
}
