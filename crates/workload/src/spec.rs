//! Column population specifications and generators.

use crate::zipf::Zipf;
use colstore::column::Column;
use rand::Rng;

/// Describes a synthetic column population.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Total number of rows in the *full* dataset.
    pub rows: usize,
    /// Number of unique values.
    pub unique_values: usize,
    /// Fixed string length of every value (the paper's C1/C2 use 12 and 10
    /// characters).
    pub value_len: usize,
    /// Zipf exponent of the occurrence distribution (0 = uniform).
    pub zipf_exponent: f64,
}

impl ColumnSpec {
    /// The paper's column **C1**: 10.9 M rows, 6.96 M uniques, 12-char
    /// strings (≈1.57 occurrences per unique — nearly distinct).
    pub fn c1_full() -> Self {
        ColumnSpec {
            name: "C1".to_string(),
            rows: 10_900_000,
            unique_values: 6_960_000,
            value_len: 12,
            zipf_exponent: 0.5,
        }
    }

    /// The paper's column **C2**: 10.9 M rows, 13,361 uniques, 10-char
    /// strings (≈816 occurrences per unique — heavily repetitive).
    pub fn c2_full() -> Self {
        ColumnSpec {
            name: "C2".to_string(),
            rows: 10_900_000,
            unique_values: 13_361,
            value_len: 10,
            zipf_exponent: 0.7,
        }
    }

    /// A proportionally scaled sample of this population with `rows` rows,
    /// as the paper's 1 M – 10 M samples ("using the distribution and
    /// values of the original columns"). Unique count scales with the
    /// sampling fraction but never below 1.
    pub fn scaled(&self, rows: usize) -> Self {
        let fraction = rows as f64 / self.rows as f64;
        let unique =
            ((self.unique_values as f64 * fraction).round() as usize).clamp(1, rows.max(1));
        ColumnSpec {
            name: self.name.clone(),
            rows,
            unique_values: unique,
            value_len: self.value_len,
            zipf_exponent: self.zipf_exponent,
        }
    }
}

/// Renders unique value number `i` as a fixed-length, lexicographically
/// ordered string of `len` bytes (base-26 lowercase, left-padded with 'a').
pub fn value_string(i: usize, len: usize) -> String {
    let mut bytes = vec![b'a'; len];
    let mut v = i;
    for slot in bytes.iter_mut().rev() {
        *slot = b'a' + (v % 26) as u8;
        v /= 26;
        if v == 0 {
            break;
        }
    }
    String::from_utf8(bytes).expect("ascii by construction")
}

/// Generates a column according to `spec`.
///
/// Every unique value appears at least once (so `|un(C)|` matches the spec
/// exactly when `rows ≥ unique_values`); the remaining rows are drawn from
/// a Zipf distribution over the unique values. The final row order is
/// shuffled.
pub fn generate<R: Rng + ?Sized>(spec: &ColumnSpec, rng: &mut R) -> Column {
    assert!(
        spec.rows >= spec.unique_values,
        "rows ({}) must cover uniques ({})",
        spec.rows,
        spec.unique_values
    );
    let mut ranks: Vec<u32> = Vec::with_capacity(spec.rows);
    // One guaranteed occurrence per unique value...
    ranks.extend(0..spec.unique_values as u32);
    // ...plus Zipf-distributed repetitions.
    let zipf = Zipf::new(spec.unique_values, spec.zipf_exponent);
    for _ in spec.unique_values..spec.rows {
        ranks.push(zipf.sample(rng) as u32);
    }
    // Shuffle so occurrences of a value are spread over the column.
    use rand::seq::SliceRandom;
    ranks.shuffle(rng);

    let mut column = Column::new(&spec.name, spec.value_len);
    for rank in ranks {
        column
            .push(value_string(rank as usize, spec.value_len).as_bytes())
            .expect("generated values fit the declared length");
    }
    column
}

/// The sorted unique values of a spec (what `sorted(un(C))` is in the
/// paper's range-size definition) — cheaper than generating + deduping.
pub fn sorted_unique_values(spec: &ColumnSpec) -> Vec<String> {
    // value_string is monotone in i, so 0..unique is already sorted.
    (0..spec.unique_values)
        .map(|i| value_string(i, spec.value_len))
        .collect()
}

/// The warehouse-style aggregate query shapes of the analytic engine
/// (`encdbdb::exec`): the TPC-style patterns a data warehouse actually
/// runs over a fact table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggQueryShape {
    /// `SELECT g, SUM(v) FROM t WHERE v BETWEEN lo AND hi GROUP BY g
    /// ORDER BY 1` — a grouped range aggregation; `range_size` counts how
    /// many consecutive unique values of `v` the filter spans (the
    /// paper's §6.3 range-size semantics).
    GroupedRange {
        /// Consecutive unique values the range covers.
        range_size: usize,
    },
    /// `SELECT g, SUM(v) FROM t GROUP BY g ORDER BY 2 DESC LIMIT k` — an
    /// unfiltered top-k ranking of groups by aggregate.
    TopK {
        /// Number of top groups to return.
        k: usize,
    },
}

/// Deterministic generator of warehouse-style aggregate SQL for a
/// two-column fact table (a group column and a value column): the same
/// seeded RNG stream always yields the same query text, so examples and
/// benches are reproducible bit-for-bit.
#[derive(Debug, Clone)]
pub struct AggQueryGen {
    table: String,
    group_col: String,
    value_col: String,
    /// Sorted unique values of the value column (`sorted(un(C))`).
    sorted_uniques: Vec<String>,
}

impl AggQueryGen {
    /// Creates a generator over the sorted unique values of `value_col`.
    ///
    /// # Panics
    ///
    /// Panics if `sorted_uniques` is empty.
    pub fn new(
        table: impl Into<String>,
        group_col: impl Into<String>,
        value_col: impl Into<String>,
        sorted_uniques: Vec<String>,
    ) -> Self {
        assert!(!sorted_uniques.is_empty(), "need at least one unique value");
        debug_assert!(sorted_uniques.windows(2).all(|w| w[0] <= w[1]));
        AggQueryGen {
            table: table.into(),
            group_col: group_col.into(),
            value_col: value_col.into(),
            sorted_uniques,
        }
    }

    /// Draws one SQL query of the given shape.
    pub fn draw<R: Rng + ?Sized>(&self, shape: AggQueryShape, rng: &mut R) -> String {
        match shape {
            AggQueryShape::GroupedRange { range_size } => {
                let rs = range_size.clamp(1, self.sorted_uniques.len());
                let max_start = self.sorted_uniques.len() - rs;
                let i = rng.gen_range(0..=max_start);
                format!(
                    "SELECT {g}, SUM({v}) FROM {t} WHERE {v} BETWEEN '{lo}' AND '{hi}' \
                     GROUP BY {g} ORDER BY 1",
                    g = self.group_col,
                    v = self.value_col,
                    t = self.table,
                    lo = self.sorted_uniques[i],
                    hi = self.sorted_uniques[i + rs - 1],
                )
            }
            AggQueryShape::TopK { k } => format!(
                "SELECT {g}, SUM({v}) FROM {t} GROUP BY {g} ORDER BY 2 DESC LIMIT {k}",
                g = self.group_col,
                v = self.value_col,
                t = self.table,
            ),
        }
    }

    /// Draws a batch of queries of one shape.
    pub fn draw_batch<R: Rng + ?Sized>(
        &self,
        shape: AggQueryShape,
        rng: &mut R,
        count: usize,
    ) -> Vec<String> {
        (0..count).map(|_| self.draw(shape, rng)).collect()
    }
}

/// The two-table equi-join query shapes of the join pipeline
/// (`encdbdb::exec::join`): a star-schema fact table probing a dimension
/// table over a shared key domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinQueryShape {
    /// The full unfiltered equi-join.
    Full,
    /// Join restricted to `range_size` consecutive key values via a
    /// `BETWEEN` on the dimension side's key — the selectivity knob,
    /// mirroring the paper's §6.3 range-size semantics.
    KeyRange {
        /// Consecutive unique key values the filter covers.
        range_size: usize,
    },
    /// Join restricted to the `k` hottest keys via `IN (...)` — the
    /// zipfian-hot-key shape (rank 0 of the Zipf distribution is the
    /// hottest, and [`generate`] maps rank *i* to the *i*-th sorted unique
    /// value).
    HotKeys {
        /// Number of hottest keys to list.
        k: usize,
    },
}

/// Deterministic generator of two-table equi-join SQL over a shared key
/// domain: a dimension table (`left`) joined by a fact table (`right`)
/// whose key column is generated with zipfian skew (one [`ColumnSpec`]
/// with a `zipf_exponent` — the same machinery that feeds
/// [`HotShardSpec`](crate::HotShardSpec)-skewed schedules). The same
/// seeded RNG stream always yields the same query text.
#[derive(Debug, Clone)]
pub struct JoinQueryGen {
    left_table: String,
    left_key: String,
    left_payload: String,
    right_table: String,
    right_key: String,
    right_payload: String,
    /// Sorted unique key values shared by both sides; zipf-rank order
    /// (hottest first) coincides with this order for [`generate`]d
    /// columns.
    sorted_keys: Vec<String>,
    /// Optional hot range: the index window of `sorted_keys` that
    /// [`JoinQueryShape::KeyRange`] draws prefer, with the preference
    /// percentage — reusing the [`crate::HotShardSpec`] shape (`hot_lo`
    /// / `hot_hi` as key indices, `hot_insert_pct` as the draw bias).
    hot: Option<crate::HotShardSpec>,
}

impl JoinQueryGen {
    /// Creates a generator over the shared sorted key domain.
    ///
    /// # Panics
    ///
    /// Panics if `sorted_keys` is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left_table: impl Into<String>,
        left_key: impl Into<String>,
        left_payload: impl Into<String>,
        right_table: impl Into<String>,
        right_key: impl Into<String>,
        right_payload: impl Into<String>,
        sorted_keys: Vec<String>,
    ) -> Self {
        assert!(!sorted_keys.is_empty(), "need at least one key value");
        debug_assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
        JoinQueryGen {
            left_table: left_table.into(),
            left_key: left_key.into(),
            left_payload: left_payload.into(),
            right_table: right_table.into(),
            right_key: right_key.into(),
            right_payload: right_payload.into(),
            sorted_keys,
            hot: None,
        }
    }

    /// Biases [`JoinQueryShape::KeyRange`] draws into a hot key-index
    /// window: `spec.hot_insert_pct` percent of the draws start inside
    /// `[hot_lo, hot_hi]` (indices into the sorted key domain).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty, leaves the domain, or the
    /// percentage exceeds 100.
    pub fn with_hot_range(mut self, spec: crate::HotShardSpec) -> Self {
        assert!(spec.hot_lo <= spec.hot_hi, "hot range must be non-empty");
        assert!(
            (spec.hot_hi as usize) < self.sorted_keys.len(),
            "hot range {}..={} leaves the {}-key domain",
            spec.hot_lo,
            spec.hot_hi,
            self.sorted_keys.len()
        );
        assert!(spec.hot_insert_pct <= 100, "percentage over 100");
        self.hot = Some(spec);
        self
    }

    fn join_head(&self) -> String {
        format!(
            "SELECT {lt}.{lp}, {rt}.{rp} FROM {lt} JOIN {rt} ON {lt}.{lk} = {rt}.{rk}",
            lt = self.left_table,
            lp = self.left_payload,
            rt = self.right_table,
            rp = self.right_payload,
            lk = self.left_key,
            rk = self.right_key,
        )
    }

    /// Draws one SQL query of the given shape.
    pub fn draw<R: Rng + ?Sized>(&self, shape: JoinQueryShape, rng: &mut R) -> String {
        match shape {
            JoinQueryShape::Full => self.join_head(),
            JoinQueryShape::KeyRange { range_size } => {
                let rs = range_size.clamp(1, self.sorted_keys.len());
                let max_start = self.sorted_keys.len() - rs;
                let i = match &self.hot {
                    Some(h) if rng.gen_range(0u32..100) < h.hot_insert_pct => {
                        let hi = (h.hot_hi as usize).min(max_start);
                        let lo = (h.hot_lo as usize).min(hi);
                        rng.gen_range(lo..=hi)
                    }
                    _ => rng.gen_range(0..=max_start),
                };
                format!(
                    "{} WHERE {lt}.{lk} BETWEEN '{lo}' AND '{hi}'",
                    self.join_head(),
                    lt = self.left_table,
                    lk = self.left_key,
                    lo = self.sorted_keys[i],
                    hi = self.sorted_keys[i + rs - 1],
                )
            }
            JoinQueryShape::HotKeys { k } => {
                let k = k.clamp(1, self.sorted_keys.len());
                let list: Vec<String> = self.sorted_keys[..k]
                    .iter()
                    .map(|v| format!("'{v}'"))
                    .collect();
                format!(
                    "{} WHERE {rt}.{rk} IN ({})",
                    self.join_head(),
                    list.join(", "),
                    rt = self.right_table,
                    rk = self.right_key,
                )
            }
        }
    }

    /// Draws a batch of queries of one shape.
    pub fn draw_batch<R: Rng + ?Sized>(
        &self,
        shape: JoinQueryShape,
        rng: &mut R,
        count: usize,
    ) -> Vec<String> {
        (0..count).map(|_| self.draw(shape, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::stats::ColumnStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn value_strings_are_fixed_length_and_ordered() {
        for len in [4usize, 10, 12] {
            let a = value_string(0, len);
            let b = value_string(25, len);
            let c = value_string(26, len);
            let d = value_string(12_345, len);
            assert_eq!(a.len(), len);
            assert_eq!(d.len(), len);
            assert!(a < b && b < c && c < d);
        }
        // Exhaustive monotonicity over a prefix.
        let vals: Vec<String> = (0..2000).map(|i| value_string(i, 6)).collect();
        for w in vals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn generated_column_matches_spec() {
        let spec = ColumnSpec {
            name: "test".into(),
            rows: 20_000,
            unique_values: 500,
            value_len: 10,
            zipf_exponent: 0.7,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let col = generate(&spec, &mut rng);
        assert_eq!(col.len(), 20_000);
        let stats = ColumnStats::of(&col);
        assert_eq!(stats.unique_count(), 500);
        assert!(col.iter().all(|v| v.len() == 10));
        // Skew: the most frequent value occurs far above the mean (40).
        assert!(stats.max_occurrences() > 100, "{}", stats.max_occurrences());
    }

    #[test]
    fn scaled_sample_preserves_shape() {
        let c2 = ColumnSpec::c2_full();
        let small = c2.scaled(100_000);
        assert_eq!(small.rows, 100_000);
        // Unique count scales with the fraction: ~13361 * 100k/10.9M ≈ 123.
        assert!(
            (100..150).contains(&small.unique_values),
            "{}",
            small.unique_values
        );
        let c1 = ColumnSpec::c1_full();
        let small1 = c1.scaled(100_000);
        // C1 stays nearly distinct under scaling.
        assert!(small1.unique_values > 60_000);
    }

    #[test]
    fn c1_c2_specs_match_paper() {
        let c1 = ColumnSpec::c1_full();
        assert_eq!(c1.rows, 10_900_000);
        assert_eq!(c1.unique_values, 6_960_000);
        assert_eq!(c1.value_len, 12);
        let c2 = ColumnSpec::c2_full();
        assert_eq!(c2.unique_values, 13_361);
        assert_eq!(c2.value_len, 10);
    }

    #[test]
    fn agg_query_gen_is_deterministic_and_well_formed() {
        let uniques: Vec<String> = (0..40).map(|i| value_string(i, 6)).collect();
        let g = AggQueryGen::new("sales", "region", "price", uniques.clone());

        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let shape = AggQueryShape::GroupedRange { range_size: 5 };
        let batch1 = g.draw_batch(shape, &mut rng1, 20);
        let batch2 = g.draw_batch(shape, &mut rng2, 20);
        assert_eq!(batch1, batch2, "same seed, same queries");
        for sql in &batch1 {
            assert!(sql.starts_with("SELECT region, SUM(price) FROM sales WHERE price BETWEEN"));
            assert!(sql.ends_with("GROUP BY region ORDER BY 1"));
        }
        // The range spans exactly `range_size` uniques.
        let sql = &batch1[0];
        let lo = sql.split('\'').nth(1).unwrap();
        let hi = sql.split('\'').nth(3).unwrap();
        let covered = uniques
            .iter()
            .filter(|u| u.as_str() >= lo && u.as_str() <= hi)
            .count();
        assert_eq!(covered, 5);

        let mut rng = StdRng::seed_from_u64(8);
        let topk = g.draw(AggQueryShape::TopK { k: 3 }, &mut rng);
        assert_eq!(
            topk,
            "SELECT region, SUM(price) FROM sales GROUP BY region ORDER BY 2 DESC LIMIT 3"
        );
    }

    #[test]
    fn join_query_gen_is_deterministic_and_well_formed() {
        let keys: Vec<String> = (0..30).map(|i| value_string(i, 6)).collect();
        let g = JoinQueryGen::new(
            "users",
            "uid",
            "name",
            "orders",
            "uid",
            "item",
            keys.clone(),
        );

        let mut rng1 = StdRng::seed_from_u64(11);
        let mut rng2 = StdRng::seed_from_u64(11);
        let shape = JoinQueryShape::KeyRange { range_size: 4 };
        let b1 = g.draw_batch(shape, &mut rng1, 10);
        let b2 = g.draw_batch(shape, &mut rng2, 10);
        assert_eq!(b1, b2, "same seed, same queries");
        for sql in &b1 {
            assert!(sql.starts_with(
                "SELECT users.name, orders.item FROM users JOIN orders ON users.uid = orders.uid \
                 WHERE users.uid BETWEEN"
            ));
            // The range spans exactly `range_size` keys.
            let lo = sql.split('\'').nth(1).unwrap();
            let hi = sql.split('\'').nth(3).unwrap();
            let covered = keys
                .iter()
                .filter(|u| u.as_str() >= lo && u.as_str() <= hi)
                .count();
            assert_eq!(covered, 4);
        }

        let mut rng = StdRng::seed_from_u64(12);
        assert_eq!(
            g.draw(JoinQueryShape::Full, &mut rng),
            "SELECT users.name, orders.item FROM users JOIN orders ON users.uid = orders.uid"
        );
        let hot = g.draw(JoinQueryShape::HotKeys { k: 2 }, &mut rng);
        assert_eq!(
            hot,
            format!(
                "SELECT users.name, orders.item FROM users JOIN orders \
                 ON users.uid = orders.uid WHERE orders.uid IN ('{}', '{}')",
                keys[0], keys[1]
            )
        );
        // Every generated query parses.
        for sql in b1.iter().chain([&hot]) {
            // The SQL front end lives in encdbdb; here we only check the
            // quoting discipline (no stray quotes).
            assert_eq!(sql.matches('\'').count() % 2, 0, "balanced quotes: {sql}");
        }
    }

    #[test]
    fn join_query_gen_hot_range_biases_key_range_draws() {
        let keys: Vec<String> = (0..100).map(|i| value_string(i, 6)).collect();
        let g = JoinQueryGen::new("d", "k", "v", "f", "k", "w", keys.clone()).with_hot_range(
            crate::HotShardSpec {
                hot_lo: 0,
                hot_hi: 9,
                hot_insert_pct: 80,
            },
        );
        let mut rng = StdRng::seed_from_u64(13);
        let batch = g.draw_batch(JoinQueryShape::KeyRange { range_size: 1 }, &mut rng, 200);
        let hot_cutoff = keys[9].clone();
        let hot = batch
            .iter()
            .filter(|sql| sql.split('\'').nth(1).unwrap() <= hot_cutoff.as_str())
            .count();
        // ~80% + the uniform draws that also land low; well above half.
        assert!(hot > 120, "hot draws: {hot}/200");
    }

    #[test]
    fn sorted_unique_values_are_sorted_and_complete() {
        let spec = ColumnSpec {
            name: "t".into(),
            rows: 100,
            unique_values: 50,
            value_len: 8,
            zipf_exponent: 0.0,
        };
        let uniques = sorted_unique_values(&spec);
        assert_eq!(uniques.len(), 50);
        for w in uniques.windows(2) {
            assert!(w[0] < w[1]);
        }
        // They are exactly the values generate() uses.
        let mut rng = StdRng::seed_from_u64(2);
        let col = generate(&spec, &mut rng);
        let stats = ColumnStats::of(&col);
        for u in &uniques {
            assert!(!stats.occurrences_of(u.as_bytes()).is_empty());
        }
    }
}
