//! Workload generation reproducing the paper's evaluation datasets.
//!
//! The paper evaluates on a snapshot of a real SAP customer's business
//! warehouse: 30 large columns of 10.9 million values each, of which two
//! extremes are reported (§6.2/§6.3):
//!
//! * **C1** — 6.96 million unique values, strings of 12 characters;
//! * **C2** — 13,361 unique values, strings of 10 characters.
//!
//! That snapshot is proprietary, so this crate builds *synthetic twins*
//! that reproduce the published statistics — row count, unique count,
//! string length, and a skewed (Zipf-like) occurrence distribution typical
//! of warehouse columns — plus the paper's evaluation machinery:
//!
//! * [`spec::ColumnSpec`] describing a column population;
//! * [`generate`] drawing a full or scaled sample ("we sample datasets from
//!   1 to 10 million records using the distribution and values of the
//!   original columns");
//! * [`queries::RangeQueryGen`] drawing the paper's random range queries of
//!   a given *range size* `RS` over `sorted(un(C))`.
//!
//! The dynamic-data extension adds [`schedule`]: interleaved
//! insert/delete/read/aggregate/compact schedules for the differential and
//! concurrency test harnesses (DESIGN.md §9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queries;
pub mod schedule;
pub mod spec;
pub mod zipf;

pub use queries::RangeQueryGen;
pub use schedule::{HotShardSpec, Op, ScheduleGen, ScheduleSpec};
pub use spec::{generate, ColumnSpec, JoinQueryGen, JoinQueryShape};
