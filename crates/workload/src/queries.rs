//! Random range-query generation with the paper's *range size* semantics.
//!
//! §6.3: "We use the term range size (RS) to describe how many consecutive
//! unique values from the dataset are searched in a range query, i.e., if
//! `sorted(un(C)) = (v0, ..., v_{|un(C)|-1})` is a sorted list of all unique
//! values in C, then RS defines the search range `R = [v_i, v_{i+RS-1}]`
//! for `i ∈ [0, |un(C)| - RS]`. For every dataset and encrypted dictionary,
//! we perform 500 random range queries with range sizes 2 and 100."

use encdict::RangeQuery;
use rand::Rng;

/// Draws random range queries of a fixed range size over a sorted unique
/// value list.
#[derive(Debug, Clone)]
pub struct RangeQueryGen {
    sorted_uniques: Vec<String>,
    range_size: usize,
}

impl RangeQueryGen {
    /// Creates a generator over `sorted_uniques` with range size `rs`.
    ///
    /// # Panics
    ///
    /// Panics if `rs` is 0 or exceeds the number of unique values — such a
    /// workload is outside the paper's definition.
    pub fn new(sorted_uniques: Vec<String>, rs: usize) -> Self {
        assert!(rs >= 1, "range size must be at least 1");
        assert!(
            rs <= sorted_uniques.len(),
            "range size {rs} exceeds {} unique values",
            sorted_uniques.len()
        );
        debug_assert!(sorted_uniques.windows(2).all(|w| w[0] <= w[1]));
        RangeQueryGen {
            sorted_uniques,
            range_size: rs,
        }
    }

    /// The configured range size.
    pub fn range_size(&self) -> usize {
        self.range_size
    }

    /// Draws one random range `[v_i, v_{i+RS-1}]`.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> RangeQuery {
        let max_start = self.sorted_uniques.len() - self.range_size;
        let i = rng.gen_range(0..=max_start);
        RangeQuery::between(
            self.sorted_uniques[i].as_bytes(),
            self.sorted_uniques[i + self.range_size - 1].as_bytes(),
        )
    }

    /// Draws the paper's batch of 500 random range queries.
    pub fn draw_batch<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<RangeQuery> {
        (0..count).map(|_| self.draw(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniques(n: usize) -> Vec<String> {
        (0..n).map(|i| crate::spec::value_string(i, 8)).collect()
    }

    #[test]
    fn ranges_span_exactly_rs_uniques() {
        let u = uniques(100);
        let g = RangeQueryGen::new(u.clone(), 5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let q = g.draw(&mut rng);
            let matching = u.iter().filter(|v| q.contains(v.as_bytes())).count();
            assert_eq!(matching, 5);
        }
    }

    #[test]
    fn rs_one_is_an_equality_query() {
        let u = uniques(10);
        let g = RangeQueryGen::new(u.clone(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let q = g.draw(&mut rng);
        let matching = u.iter().filter(|v| q.contains(v.as_bytes())).count();
        assert_eq!(matching, 1);
    }

    #[test]
    fn batch_has_requested_size_and_varies() {
        let g = RangeQueryGen::new(uniques(1000), 2);
        let mut rng = StdRng::seed_from_u64(3);
        let batch = g.draw_batch(&mut rng, 500);
        assert_eq!(batch.len(), 500);
        let distinct: std::collections::HashSet<_> =
            batch.iter().map(|q| format!("{q:?}")).collect();
        assert!(
            distinct.len() > 100,
            "queries should vary: {}",
            distinct.len()
        );
    }

    #[test]
    #[should_panic]
    fn oversized_rs_panics() {
        let _ = RangeQueryGen::new(uniques(10), 11);
    }
}
