//! Zipf-distributed sampling over ranks.
//!
//! Warehouse columns typically have a few very frequent values and a long
//! tail of rare ones (the paper cites [65, 58] for string-dictionary
//! statistics). We model occurrence counts with a Zipf distribution over
//! value ranks, using inverse-CDF sampling over precomputed cumulative
//! weights.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Rank `k` has weight `1 / (k + 1)^s`; `s = 0` degenerates to uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_positive() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
        // Rank 0 of Zipf(1) over 100 ranks carries ~1/H_100 ≈ 19% of mass.
        assert!(counts[0] > 50_000 / 10, "rank 0: {}", counts[0]);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
