//! PlainDBDB: the plaintext twin of EncDBDB (paper §6.3).
//!
//! "PlainDBDB uses the same algorithms as EncDBDB, but the dictionaries are
//! plaintext and the algorithms are processed without an enclave. We use
//! PlainDBDB as a second baseline to evaluate the performance overhead of
//! encryption and SGX."
//!
//! The search functions here run the exact same [`crate::search`] algorithms
//! through a plaintext [`DictEntryReader`], so any latency difference to the
//! encrypted path isolates the crypto + boundary cost.

use crate::dict::PlainDictionary;
use crate::error::EncdictError;
use crate::kind::OrderOption;
use crate::range::RangeQuery;
use crate::search::{rotated, sorted, unsorted, DictEntryReader, DictSearchResult};

/// Plaintext dictionary-entry reader (no decryption, no enclave).
struct PlainDictReader<'a> {
    dict: &'a PlainDictionary,
}

impl DictEntryReader for PlainDictReader<'_> {
    fn len(&self) -> usize {
        self.dict.len()
    }

    fn read_into(&mut self, i: usize, buf: &mut Vec<u8>) -> Result<(), EncdictError> {
        buf.clear();
        buf.extend_from_slice(self.dict.value(i));
        Ok(())
    }
}

/// PlainDBDB dictionary search: same algorithms, plaintext data, no enclave.
///
/// # Errors
///
/// Returns [`EncdictError::MaxLenTooLarge`] for rotated kinds whose column
/// maximum exceeds the encodable limit.
pub fn search_plain(
    dict: &PlainDictionary,
    range: &RangeQuery,
) -> Result<DictSearchResult, EncdictError> {
    let mut reader = PlainDictReader { dict };
    match dict.kind().order() {
        OrderOption::Sorted => sorted::search_sorted(&mut reader, range),
        OrderOption::Rotated => rotated::search_rotated(&mut reader, range, dict.max_len()),
        OrderOption::Unsorted => unsorted::search_unsorted(&mut reader, range),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_plain, BuildParams};
    use crate::kind::EdKind;
    use colstore::column::Column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plain_search_matches_reference_for_all_kinds() {
        let values = ["Hans", "Jessica", "Archie", "Ella", "Jessica", "Jessica"];
        let col = Column::from_strs("c", 12, values).unwrap();
        let params = BuildParams {
            bs_max: 2,
            ..BuildParams::default()
        };
        let queries = [
            RangeQuery::between("Archie", "Hans"),
            RangeQuery::equals("Jessica"),
            RangeQuery::equals("Nobody"),
            RangeQuery::less_than("Ella"),
            RangeQuery::at_least("Hans"),
        ];
        for (i, kind) in EdKind::ALL.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(50 + i as u64);
            let (dict, _) = build_plain(&col, *kind, &params, &mut rng).unwrap();
            for q in &queries {
                let res = search_plain(&dict, q).unwrap();
                let expected: Vec<u32> = (0..dict.len())
                    .filter(|&j| q.contains(dict.value(j)))
                    .map(|j| j as u32)
                    .collect();
                let mut got = res.to_vid_list();
                got.sort_unstable();
                assert_eq!(got, expected, "kind {kind} query {q:?}");
            }
        }
    }

    #[test]
    fn end_to_end_rids_match_column_scan() {
        // Dictionary search + attribute-vector search must return exactly
        // the rows a direct column scan finds — for every kind.
        use crate::avsearch::{search, Parallelism, SetSearchStrategy};
        let values = ["d", "b", "a", "c", "b", "e", "a", "b"];
        let col = Column::from_strs("c", 4, values).unwrap();
        let q = RangeQuery::between("b", "d");
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| q.contains(v.as_bytes()))
            .map(|(j, _)| j as u32)
            .collect();
        for (i, kind) in EdKind::ALL.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(80 + i as u64);
            let (dict, av) = build_plain(&col, *kind, &BuildParams::default(), &mut rng).unwrap();
            let res = search_plain(&dict, &q).unwrap();
            let rids = search(
                &av,
                &res,
                dict.len(),
                SetSearchStrategy::PaperLinear,
                Parallelism::Serial,
            );
            let got: Vec<u32> = rids.iter().map(|r| r.0).collect();
            assert_eq!(got, expected, "kind {kind}");
        }
    }
}
