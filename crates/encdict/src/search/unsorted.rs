//! Linear-scan search over unsorted dictionaries (paper Algorithm 4).
//!
//! ED3/ED6/ED9 shuffle the dictionary, so no logarithmic search is
//! possible: every entry is loaded into the enclave, decrypted, and checked
//! against the range. The result is the list of matching ValueIDs.

use super::{DictEntryReader, DictSearchResult};
use crate::error::EncdictError;
use crate::range::RangeQuery;

/// `EnclDictSearch 3/6/9`: scans the whole dictionary and returns every
/// ValueID whose plaintext falls into `range`, in ascending ValueID order.
///
/// # Errors
///
/// Propagates reader failures ([`EncdictError::Crypto`] on tampered
/// ciphertexts).
pub fn search_unsorted<R: DictEntryReader>(
    reader: &mut R,
    range: &RangeQuery,
) -> Result<DictSearchResult, EncdictError> {
    let mut vids = Vec::new();
    let mut buf = Vec::new();
    for i in 0..reader.len() {
        reader.read_into(i, &mut buf)?;
        if range.contains(&buf) {
            vids.push(i as u32);
        }
    }
    Ok(DictSearchResult::Ids(vids))
}

/// Batched [`search_unsorted`]: answers a whole disjunction in *one* pass
/// over the dictionary. Each entry is loaded and decrypted once and tested
/// against every range, so the decrypt cost stays `|D|` instead of
/// `|D| · ranges`. Returns one result per range, in request order.
///
/// # Errors
///
/// As [`search_unsorted`].
pub fn search_unsorted_multi<R: DictEntryReader>(
    reader: &mut R,
    ranges: &[RangeQuery],
) -> Result<Vec<DictSearchResult>, EncdictError> {
    if ranges.is_empty() {
        return Ok(Vec::new());
    }
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); ranges.len()];
    let mut buf = Vec::new();
    for i in 0..reader.len() {
        reader.read_into(i, &mut buf)?;
        for (vids, q) in out.iter_mut().zip(ranges) {
            if q.contains(&buf) {
                vids.push(i as u32);
            }
        }
    }
    Ok(out.into_iter().map(DictSearchResult::Ids).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::sorted::tests::VecReader;

    #[test]
    fn finds_matches_in_shuffled_dictionary() {
        // Figure 3 (d): unsorted dictionary Archie, Hans, Ella, Jessica.
        let mut r = VecReader::new(["Archie", "Hans", "Ella", "Jessica"]);
        let res = search_unsorted(&mut r, &RangeQuery::between("Archie", "Hans")).unwrap();
        assert_eq!(res.to_vid_list(), vec![0, 1, 2]);
    }

    #[test]
    fn scan_touches_every_entry() {
        let mut r = VecReader::new(["q", "a", "z", "m"]);
        let _ = search_unsorted(&mut r, &RangeQuery::equals("a")).unwrap();
        assert_eq!(r.reads, 4, "linear scan must read all |D| entries");
    }

    #[test]
    fn duplicates_all_match() {
        let mut r = VecReader::new(["x", "y", "x", "z", "x"]);
        let res = search_unsorted(&mut r, &RangeQuery::equals("x")).unwrap();
        assert_eq!(res.to_vid_list(), vec![0, 2, 4]);
    }

    #[test]
    fn empty_result_and_empty_dictionary() {
        let mut r = VecReader::new(["a", "b"]);
        assert_eq!(
            search_unsorted(&mut r, &RangeQuery::equals("nope"))
                .unwrap()
                .match_count(),
            0
        );
        let mut empty = VecReader::new(Vec::<&str>::new());
        assert_eq!(
            search_unsorted(&mut empty, &RangeQuery::equals("x"))
                .unwrap()
                .match_count(),
            0
        );
    }

    #[test]
    fn multi_search_single_pass_matches_per_range_scans() {
        let mut r = VecReader::new(["q", "a", "z", "m", "a", "q"]);
        let ranges = [
            RangeQuery::equals("a"),
            RangeQuery::between("m", "q"),
            RangeQuery::equals("nope"),
        ];
        let multi = search_unsorted_multi(&mut r, &ranges).unwrap();
        // One pass: |D| reads total, not |D| per range.
        assert_eq!(r.reads, 6, "batched scan reads each entry once");
        assert_eq!(multi.len(), 3);
        for (res, q) in multi.iter().zip(&ranges) {
            let mut fresh = VecReader::new(["q", "a", "z", "m", "a", "q"]);
            let single = search_unsorted(&mut fresh, q).unwrap();
            assert_eq!(res.to_vid_list(), single.to_vid_list());
        }
        // Empty disjunction: no reads, no results.
        let mut r2 = VecReader::new(["a", "b"]);
        assert!(search_unsorted_multi(&mut r2, &[]).unwrap().is_empty());
    }

    #[test]
    fn exclusive_and_unbounded_bounds() {
        let mut r = VecReader::new(["c", "a", "d", "b"]);
        let res = search_unsorted(&mut r, &RangeQuery::greater_than("b")).unwrap();
        assert_eq!(res.to_vid_list(), vec![0, 2]);
        let res = search_unsorted(&mut r, &RangeQuery::at_most("b")).unwrap();
        assert_eq!(res.to_vid_list(), vec![1, 3]);
    }
}
