//! Binary search over sorted dictionaries (paper Algorithm 1).
//!
//! `EnclDictSearch 1` performs one *leftmost* and one *rightmost* binary
//! search to find where the range starts (`vid_min`) and ends (`vid_max`).
//! ED4 and ED7 reuse it unchanged because "leftmost and rightmost binary
//! searches inherently handle repetitions".

use super::{DictEntryReader, DictSearchResult, VidRange};
use crate::error::EncdictError;
use crate::range::{RangeBound, RangeQuery};

/// First index whose value satisfies the *start* bound, i.e. the leftmost
/// binary search of Algorithm 1. Returns `len` if no value qualifies.
pub(crate) fn lower_bound<R: DictEntryReader>(
    reader: &mut R,
    bound: &RangeBound,
) -> Result<usize, EncdictError> {
    let mut lo = 0usize;
    let mut hi = reader.len();
    let mut buf = Vec::new();
    while lo < hi {
        let mid = (lo + hi) / 2;
        reader.read_into(mid, &mut buf)?;
        let qualifies = match bound {
            RangeBound::Inclusive(s) => buf.as_slice() >= s.as_slice(),
            RangeBound::Exclusive(s) => buf.as_slice() > s.as_slice(),
            RangeBound::Unbounded => true,
        };
        if qualifies {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// One past the last index whose value satisfies the *end* bound, i.e. the
/// rightmost binary search of Algorithm 1 (as an exclusive upper index).
pub(crate) fn upper_bound<R: DictEntryReader>(
    reader: &mut R,
    bound: &RangeBound,
) -> Result<usize, EncdictError> {
    let mut lo = 0usize;
    let mut hi = reader.len();
    let mut buf = Vec::new();
    while lo < hi {
        let mid = (lo + hi) / 2;
        reader.read_into(mid, &mut buf)?;
        let exceeds = match bound {
            RangeBound::Inclusive(e) => buf.as_slice() > e.as_slice(),
            RangeBound::Exclusive(e) => buf.as_slice() >= e.as_slice(),
            RangeBound::Unbounded => false,
        };
        if exceeds {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// `EnclDictSearch 1/4/7`: dictionary search over a sorted dictionary.
///
/// Returns a single ValueID range (plus a dummy slot, like the paper's
/// implementation returns a dummy range to keep the reply shape uniform).
///
/// # Errors
///
/// Propagates reader failures ([`EncdictError::Crypto`] on tampered
/// ciphertexts).
pub fn search_sorted<R: DictEntryReader>(
    reader: &mut R,
    range: &RangeQuery,
) -> Result<DictSearchResult, EncdictError> {
    if reader.is_empty() {
        return Ok(DictSearchResult::empty_ranges());
    }
    let vid_min = lower_bound(reader, &range.start)?;
    let vid_end = upper_bound(reader, &range.end)?; // exclusive
    if vid_min >= vid_end {
        return Ok(DictSearchResult::empty_ranges());
    }
    Ok(DictSearchResult::Ranges([
        VidRange::new(vid_min as u32, (vid_end - 1) as u32),
        None,
    ]))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A plain in-memory reader for algorithm tests.
    pub(crate) struct VecReader {
        pub values: Vec<Vec<u8>>,
        pub reads: usize,
    }

    impl VecReader {
        pub(crate) fn new<S: AsRef<[u8]>>(values: impl IntoIterator<Item = S>) -> Self {
            VecReader {
                values: values.into_iter().map(|v| v.as_ref().to_vec()).collect(),
                reads: 0,
            }
        }
    }

    impl DictEntryReader for VecReader {
        fn len(&self) -> usize {
            self.values.len()
        }
        fn read_into(&mut self, i: usize, buf: &mut Vec<u8>) -> Result<(), EncdictError> {
            self.reads += 1;
            buf.clear();
            buf.extend_from_slice(&self.values[i]);
            Ok(())
        }
    }

    fn vids(r: &DictSearchResult) -> Vec<u32> {
        r.to_vid_list()
    }

    #[test]
    fn closed_range_on_fig3_dictionary() {
        // Sorted dictionary of Figure 3 (b): Archie, Ella, Hans, Jessica.
        let mut r = VecReader::new(["Archie", "Ella", "Hans", "Jessica"]);
        let res = search_sorted(&mut r, &RangeQuery::between("Archie", "Hans")).unwrap();
        assert_eq!(vids(&res), vec![0, 1, 2]);
    }

    #[test]
    fn equality_and_absent_values() {
        let mut r = VecReader::new(["a", "c", "e", "g"]);
        assert_eq!(
            vids(&search_sorted(&mut r, &RangeQuery::equals("c")).unwrap()),
            vec![1]
        );
        // Absent value inside the domain.
        assert_eq!(
            search_sorted(&mut r, &RangeQuery::equals("d"))
                .unwrap()
                .match_count(),
            0
        );
        // Range entirely outside.
        assert_eq!(
            search_sorted(&mut r, &RangeQuery::between("x", "z"))
                .unwrap()
                .match_count(),
            0
        );
    }

    #[test]
    fn range_with_absent_endpoints_snaps_inward() {
        let mut r = VecReader::new(["b", "d", "f"]);
        // [a, e] matches b and d even though neither endpoint exists.
        assert_eq!(
            vids(&search_sorted(&mut r, &RangeQuery::between("a", "e")).unwrap()),
            vec![0, 1]
        );
    }

    #[test]
    fn exclusive_bounds() {
        let mut r = VecReader::new(["a", "b", "c", "d"]);
        let q = RangeQuery {
            start: RangeBound::Exclusive(b"a".to_vec()),
            end: RangeBound::Exclusive(b"d".to_vec()),
        };
        assert_eq!(vids(&search_sorted(&mut r, &q).unwrap()), vec![1, 2]);
    }

    #[test]
    fn unbounded_sides() {
        let mut r = VecReader::new(["a", "b", "c"]);
        assert_eq!(
            vids(&search_sorted(&mut r, &RangeQuery::at_most("b")).unwrap()),
            vec![0, 1]
        );
        assert_eq!(
            vids(&search_sorted(&mut r, &RangeQuery::at_least("b")).unwrap()),
            vec![1, 2]
        );
        let all = RangeQuery {
            start: RangeBound::Unbounded,
            end: RangeBound::Unbounded,
        };
        assert_eq!(vids(&search_sorted(&mut r, &all).unwrap()), vec![0, 1, 2]);
    }

    #[test]
    fn repetitions_are_covered_ed4_ed7_style() {
        // ED4/ED7 dictionaries contain repeated plaintexts; the leftmost /
        // rightmost searches must cover the whole run.
        let mut r = VecReader::new(["a", "b", "b", "b", "c"]);
        assert_eq!(
            vids(&search_sorted(&mut r, &RangeQuery::equals("b")).unwrap()),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn read_count_is_logarithmic() {
        let values: Vec<String> = (0..4096).map(|i| format!("{i:08}")).collect();
        let mut r = VecReader::new(values);
        let _ = search_sorted(&mut r, &RangeQuery::between("00001000", "00001999")).unwrap();
        // Two binary searches over 4096 entries: ~2 * 12 reads, certainly
        // far below a linear scan.
        assert!(r.reads <= 2 * 13, "reads = {}", r.reads);
    }

    #[test]
    fn empty_dictionary() {
        let mut r = VecReader::new(Vec::<&str>::new());
        assert_eq!(
            search_sorted(&mut r, &RangeQuery::between("a", "z"))
                .unwrap()
                .match_count(),
            0
        );
    }
}
