//! Dictionary search: the trusted halves of ED1–ED9 query processing.
//!
//! The three order options need three algorithms (paper §4.1):
//!
//! * [`sorted`] — leftmost/rightmost binary search (Algorithm 1), shared by
//!   ED1/ED4/ED7 (repetitions are handled inherently).
//! * [`rotated`] — the special binary search on offset-shifted encodings
//!   (Algorithms 2 + 3) for ED2/ED5/ED8, including the equal-boundary
//!   corner case of ED5/ED8.
//! * [`unsorted`] — the linear scan (Algorithm 4) for ED3/ED6/ED9.
//!
//! All algorithms are written against the [`DictEntryReader`] abstraction so
//! the *same code* runs inside the enclave (reading + decrypting untrusted
//! ciphertexts) and in PlainDBDB (reading plaintext directly) — mirroring
//! the paper's PlainDBDB baseline, which "uses the same algorithms ...
//! processed without an enclave".

pub mod rotated;
pub mod sorted;
pub mod unsorted;

use crate::error::EncdictError;

/// Read access to dictionary entries during a search.
///
/// `read_into` places the *plaintext* of entry `i` into `buf` (decrypting
/// if the underlying dictionary is encrypted). Using a caller-provided
/// buffer keeps the trusted memory footprint constant regardless of `|D|`.
pub trait DictEntryReader {
    /// Number of dictionary entries.
    fn len(&self) -> usize;

    /// Whether the dictionary is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads entry `i` into `buf` (replacing its contents).
    ///
    /// # Errors
    ///
    /// Returns [`EncdictError::Crypto`] if decryption fails (tampered
    /// dictionary) or [`EncdictError::CorruptDictionary`] on layout errors.
    fn read_into(&mut self, i: usize, buf: &mut Vec<u8>) -> Result<(), EncdictError>;
}

/// An inclusive range of ValueIDs `[lo, hi]` returned by a dictionary
/// search over sorted or rotated dictionaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VidRange {
    /// First matching ValueID.
    pub lo: u32,
    /// Last matching ValueID (inclusive).
    pub hi: u32,
}

impl VidRange {
    /// Creates a range; returns `None` if `lo > hi` (empty).
    pub fn new(lo: u32, hi: u32) -> Option<Self> {
        if lo <= hi {
            Some(VidRange { lo, hi })
        } else {
            None
        }
    }

    /// Number of ValueIDs covered.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize + 1
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `vid` falls into the range.
    #[inline]
    pub fn contains(&self, vid: u32) -> bool {
        self.lo <= vid && vid <= self.hi
    }
}

/// The result of a dictionary search.
///
/// Sorted and rotated dictionaries return up to two contiguous ValueID
/// ranges (rotated results can wrap around the dictionary end; a dummy
/// `None` is used otherwise, like the paper's `(-1, -1)` dummy range).
/// Unsorted dictionaries return an explicit ValueID list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DictSearchResult {
    /// Up to two ValueID ranges (sorted: one; rotated: possibly two).
    Ranges([Option<VidRange>; 2]),
    /// Explicit matching ValueIDs, ascending (unsorted kinds).
    Ids(Vec<u32>),
}

impl DictSearchResult {
    /// An empty result.
    pub fn empty_ranges() -> Self {
        DictSearchResult::Ranges([None, None])
    }

    /// Total number of matching ValueIDs.
    pub fn match_count(&self) -> usize {
        match self {
            DictSearchResult::Ranges(rs) => rs.iter().flatten().map(VidRange::len).sum(),
            DictSearchResult::Ids(ids) => ids.len(),
        }
    }

    /// Materializes all matching ValueIDs (test/diagnostic helper).
    pub fn to_vid_list(&self) -> Vec<u32> {
        match self {
            DictSearchResult::Ranges(rs) => {
                let mut out: Vec<u32> = rs.iter().flatten().flat_map(|r| r.lo..=r.hi).collect();
                out.sort_unstable();
                out
            }
            DictSearchResult::Ids(ids) => ids.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vid_range_construction() {
        assert_eq!(VidRange::new(3, 5), Some(VidRange { lo: 3, hi: 5 }));
        assert_eq!(VidRange::new(5, 5).unwrap().len(), 1);
        assert_eq!(VidRange::new(5, 3), None);
    }

    #[test]
    fn match_count_sums_ranges() {
        let r = DictSearchResult::Ranges([VidRange::new(0, 2), VidRange::new(8, 9)]);
        assert_eq!(r.match_count(), 5);
        assert_eq!(r.to_vid_list(), vec![0, 1, 2, 8, 9]);
        assert_eq!(DictSearchResult::empty_ranges().match_count(), 0);
        assert_eq!(DictSearchResult::Ids(vec![4, 7]).match_count(), 2);
    }
}
