//! Special binary search over rotated dictionaries (paper Algorithms 2 + 3).
//!
//! ED2/ED5/ED8 store a lexicographically sorted dictionary rotated by a
//! secret uniform offset. Algorithm 3 makes binary search possible without
//! leaking the offset through the access pattern: every value is mapped
//! through `t(v) = (ENCODE(v) − ENCODE(D[0])) mod N`, where `N` is the
//! domain size of the column. Relative to the rotation point, `t` is
//! monotone along the *rotated* index order, so ordinary leftmost/rightmost
//! binary searches on `t` work and their access pattern depends only on
//! `|D|` — not on the offset.
//!
//! The postprocessing of Algorithm 2 then decides whether the matching
//! ValueIDs form one contiguous range or wrap around the dictionary end
//! (two ranges). We branch on the *transformed bounds* (`t(R_s) > t(R_e)`
//! ⟺ the range straddles the rotation point), which is equivalent to the
//! paper's offset-based case analysis but needs no extra state.
//!
//! **ED5/ED8 corner case** (paper: "the plaintext value of the last and
//! first entry in D might be equal"): duplicates of `D[0]`'s plaintext that
//! rotate to the *end* of the dictionary have `t = 0` and would break the
//! monotonicity of `t`. We strip that trailing run with a bounded backward
//! scan first, binary-search the remaining region, and re-attach the run if
//! its value matches the range. The scan costs `O(dup)` extra loads where
//! `dup` is the boundary value's duplicate count — at most `bs_max` for
//! ED5, and 0 for ED2 (no duplicates exist).

use super::{DictEntryReader, DictSearchResult, VidRange};
use crate::bigint::U256;
use crate::encode::{domain_size, encode};
use crate::error::EncdictError;
use crate::range::{RangeBound, RangeQuery};

/// Transformed bound: the `t`-encoding of a range endpoint plus whether the
/// endpoint itself is included.
struct TBound {
    t: U256,
    inclusive: bool,
}

fn start_bound(
    bound: &RangeBound,
    e0: U256,
    n: U256,
    max_len: usize,
) -> Result<TBound, EncdictError> {
    Ok(match bound {
        RangeBound::Inclusive(s) => TBound {
            t: encode(s, max_len)?.sub_mod(e0, n),
            inclusive: true,
        },
        RangeBound::Exclusive(s) => TBound {
            t: encode(s, max_len)?.sub_mod(e0, n),
            inclusive: false,
        },
        // -∞ is the smallest domain value (the empty string, encoding 0).
        RangeBound::Unbounded => TBound {
            t: U256::ZERO.sub_mod(e0, n),
            inclusive: true,
        },
    })
}

fn end_bound(
    bound: &RangeBound,
    e0: U256,
    n: U256,
    max_len: usize,
) -> Result<TBound, EncdictError> {
    Ok(match bound {
        RangeBound::Inclusive(e) => TBound {
            t: encode(e, max_len)?.sub_mod(e0, n),
            inclusive: true,
        },
        RangeBound::Exclusive(e) => TBound {
            t: encode(e, max_len)?.sub_mod(e0, n),
            inclusive: false,
        },
        // +∞ is the largest domain value, encoding N - 1.
        RangeBound::Unbounded => TBound {
            t: n.wrapping_sub(U256::ONE).sub_mod(e0, n),
            inclusive: true,
        },
    })
}

/// Whether the range is syntactically empty (start above end in the
/// plaintext domain), which must be caught before the modular transform.
fn range_is_empty(range: &RangeQuery) -> bool {
    let (s, s_incl) = match &range.start {
        RangeBound::Inclusive(v) => (v, true),
        RangeBound::Exclusive(v) => (v, false),
        RangeBound::Unbounded => return false,
    };
    let (e, e_incl) = match &range.end {
        RangeBound::Inclusive(v) => (v, true),
        RangeBound::Exclusive(v) => (v, false),
        RangeBound::Unbounded => return false,
    };
    match s.cmp(e) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Equal => !(s_incl && e_incl),
        std::cmp::Ordering::Less => false,
    }
}

/// First region index whose transformed value satisfies the start bound
/// (`t ≥ ts`, or `t > ts` for an exclusive start) — `BinSearchSpecialS`.
fn lower_bound_t<R: DictEntryReader>(
    reader: &mut R,
    region_len: usize,
    bound: &TBound,
    e0: U256,
    n: U256,
    max_len: usize,
) -> Result<usize, EncdictError> {
    let mut lo = 0usize;
    let mut hi = region_len;
    let mut buf = Vec::new();
    while lo < hi {
        let mid = (lo + hi) / 2;
        reader.read_into(mid, &mut buf)?;
        let t = encode(&buf, max_len)?.sub_mod(e0, n);
        let qualifies = if bound.inclusive {
            t >= bound.t
        } else {
            t > bound.t
        };
        if qualifies {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// One past the last region index whose transformed value satisfies the end
/// bound (`t ≤ te`, or `t < te` for an exclusive end) — `BinSearchSpecialE`.
fn upper_bound_t<R: DictEntryReader>(
    reader: &mut R,
    region_len: usize,
    bound: &TBound,
    e0: U256,
    n: U256,
    max_len: usize,
) -> Result<usize, EncdictError> {
    let mut lo = 0usize;
    let mut hi = region_len;
    let mut buf = Vec::new();
    while lo < hi {
        let mid = (lo + hi) / 2;
        reader.read_into(mid, &mut buf)?;
        let t = encode(&buf, max_len)?.sub_mod(e0, n);
        let exceeds = if bound.inclusive {
            t > bound.t
        } else {
            t >= bound.t
        };
        if exceeds {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// `EnclDictSearch 2/5/8`: dictionary search over a rotated dictionary.
///
/// Returns up to two ValueID ranges; a single-range result carries a dummy
/// `None` in the second slot (the paper returns a `(-1, -1)` dummy range
/// for the same reason — a uniform reply shape).
///
/// # Errors
///
/// Propagates reader failures and [`EncdictError::MaxLenTooLarge`] if the
/// column maximum exceeds the encodable length.
pub fn search_rotated<R: DictEntryReader>(
    reader: &mut R,
    range: &RangeQuery,
    max_len: usize,
) -> Result<DictSearchResult, EncdictError> {
    let dict_len = reader.len();
    if dict_len == 0 || range_is_empty(range) {
        return Ok(DictSearchResult::empty_ranges());
    }
    let n = domain_size(max_len)?;

    // r = ENCODE(PAE_Dec(SK_D, eD[0])) — Algorithm 3 line 2.
    let mut buf = Vec::new();
    reader.read_into(0, &mut buf)?;
    let v0 = buf.clone();
    let e0 = encode(&v0, max_len)?;

    // Corner case: strip the trailing run of entries equal to D[0]'s value
    // (duplicates wrapped past the rotation point in ED5/ED8).
    let mut tail_dups = 0usize;
    while tail_dups + 1 < dict_len {
        reader.read_into(dict_len - 1 - tail_dups, &mut buf)?;
        if buf == v0 {
            tail_dups += 1;
        } else {
            break;
        }
    }
    let region_len = dict_len - tail_dups;

    let ts = start_bound(&range.start, e0, n, max_len)?;
    let te = end_bound(&range.end, e0, n, max_len)?;

    let mut ranges: Vec<VidRange> = Vec::new();
    if ts.t <= te.t {
        // The plaintext range does not straddle the rotation point: one
        // contiguous run in rotated index order.
        let lo = lower_bound_t(reader, region_len, &ts, e0, n, max_len)?;
        let hi = upper_bound_t(reader, region_len, &te, e0, n, max_len)?;
        if lo < hi {
            ranges.push(VidRange {
                lo: lo as u32,
                hi: (hi - 1) as u32,
            });
        }
    } else {
        // Straddling range: matches are t ≥ ts (top of the region) plus
        // t ≤ te (bottom of the region) — Algorithm 2's two-range case.
        let hi = upper_bound_t(reader, region_len, &te, e0, n, max_len)?;
        if hi > 0 {
            ranges.push(VidRange {
                lo: 0,
                hi: (hi - 1) as u32,
            });
        }
        let lo = lower_bound_t(reader, region_len, &ts, e0, n, max_len)?;
        if lo < region_len {
            ranges.push(VidRange {
                lo: lo as u32,
                hi: (region_len - 1) as u32,
            });
        }
    }

    // Re-attach the stripped trailing duplicates if their value matches.
    if tail_dups > 0 && range.contains(&v0) {
        let tail_range = VidRange {
            lo: region_len as u32,
            hi: (dict_len - 1) as u32,
        };
        // Merge with an adjacent range ending right before the tail run.
        if let Some(last) = ranges.iter_mut().find(|r| r.hi + 1 == tail_range.lo) {
            last.hi = tail_range.hi;
        } else {
            ranges.push(tail_range);
        }
    }

    debug_assert!(ranges.len() <= 2, "rotated search yields at most 2 ranges");
    let mut out = [None, None];
    for (slot, r) in out.iter_mut().zip(ranges) {
        *slot = Some(r);
    }
    Ok(DictSearchResult::Ranges(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::sorted::tests::VecReader;

    /// Builds a rotated reader: sorts `values`, rotates by `offset`.
    fn rotated(values: &[&str], offset: usize) -> VecReader {
        let mut sorted: Vec<&str> = values.to_vec();
        sorted.sort();
        let n = sorted.len();
        let mut arr = vec![""; n];
        for (j, v) in sorted.iter().enumerate() {
            arr[(j + offset) % n] = v;
        }
        VecReader::new(arr)
    }

    /// Reference: all indices whose value matches the range.
    fn expected(reader: &VecReader, range: &RangeQuery) -> Vec<u32> {
        reader
            .values
            .iter()
            .enumerate()
            .filter(|(_, v)| range.contains(v))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn check(values: &[&str], offset: usize, range: &RangeQuery) {
        let mut r = rotated(values, offset);
        let res = search_rotated(&mut r, range, 12).unwrap();
        let mut got = res.to_vid_list();
        got.sort_unstable();
        assert_eq!(
            got,
            expected(&r, range),
            "values {values:?} offset {offset} range {range:?}"
        );
    }

    #[test]
    fn figure_3c_example() {
        // Figure 3 (c): sorted (Archie, Ella, Hans, Jessica) rotated by 3 →
        // (Ella, Hans, Jessica, Archie).
        let mut r = VecReader::new(["Ella", "Hans", "Jessica", "Archie"]);
        let res = search_rotated(&mut r, &RangeQuery::between("Archie", "Hans"), 12).unwrap();
        let mut got = res.to_vid_list();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 3]); // Ella, Hans, Archie
    }

    #[test]
    fn all_offsets_and_ranges_match_reference() {
        let values = ["apple", "banana", "cherry", "date", "elder", "fig", "grape"];
        let queries = [
            RangeQuery::between("banana", "elder"),
            RangeQuery::between("apple", "grape"),
            RangeQuery::between("a", "z"),
            RangeQuery::equals("date"),
            RangeQuery::equals("missing"),
            RangeQuery::less_than("cherry"),
            RangeQuery::greater_than("date"),
            RangeQuery::at_most("date"),
            RangeQuery::at_least("fig"),
            RangeQuery::between("blueberry", "coconut"),
        ];
        for offset in 0..values.len() {
            for q in &queries {
                check(&values, offset, q);
            }
        }
    }

    #[test]
    fn wrapped_result_produces_two_ranges() {
        // Sorted a..f rotated by 3: (d e f a b c). Query [b, e] wraps.
        let mut r = rotated(&["a", "b", "c", "d", "e", "f"], 3);
        let res = search_rotated(&mut r, &RangeQuery::between("b", "e"), 4).unwrap();
        match &res {
            DictSearchResult::Ranges([Some(_), Some(_)]) => {}
            other => panic!("expected two ranges, got {other:?}"),
        }
        let mut got = res.to_vid_list();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 4, 5]); // d, e, b, c
    }

    #[test]
    fn duplicates_at_rotation_boundary_ed5_corner_case() {
        // Duplicates of the boundary value split across the wrap point.
        // Sorted: a a b b b c; offset 2 → (b c a a b b): D[0] = "b" and the
        // tail run "b b" equals it.
        let values = ["a", "a", "b", "b", "b", "c"];
        for offset in 0..values.len() {
            for q in [
                RangeQuery::equals("b"),
                RangeQuery::equals("a"),
                RangeQuery::between("a", "b"),
                RangeQuery::between("b", "c"),
                RangeQuery::greater_than("b"),
                RangeQuery::less_than("b"),
            ] {
                check(&values, offset, &q);
            }
        }
    }

    #[test]
    fn all_equal_dictionary() {
        let values = ["x", "x", "x", "x"];
        for offset in 0..4 {
            check(&values, offset, &RangeQuery::equals("x"));
            check(&values, offset, &RangeQuery::equals("y"));
            check(&values, offset, &RangeQuery::between("a", "z"));
        }
    }

    #[test]
    fn single_entry_dictionary() {
        for q in [RangeQuery::equals("m"), RangeQuery::equals("q")] {
            check(&["m"], 0, &q);
        }
    }

    #[test]
    fn syntactically_empty_range() {
        let mut r = rotated(&["a", "b", "c"], 1);
        let res = search_rotated(&mut r, &RangeQuery::between("z", "a"), 4).unwrap();
        assert_eq!(res.match_count(), 0);
        // Exclusive-equal bounds are empty too.
        let q = RangeQuery {
            start: RangeBound::Inclusive(b"b".to_vec()),
            end: RangeBound::Exclusive(b"b".to_vec()),
        };
        let res = search_rotated(&mut r, &q, 4).unwrap();
        assert_eq!(res.match_count(), 0);
    }

    #[test]
    fn unbounded_queries_wrap_correctly() {
        let values = ["alpha", "beta", "gamma", "delta", "epsilon"];
        for offset in 0..values.len() {
            check(&values, offset, &RangeQuery::at_least("beta"));
            check(&values, offset, &RangeQuery::at_most("delta"));
            let all = RangeQuery {
                start: RangeBound::Unbounded,
                end: RangeBound::Unbounded,
            };
            check(&values, offset, &all);
        }
    }

    #[test]
    fn read_count_is_logarithmic_plus_corner_scan() {
        let values: Vec<String> = (0..8192).map(|i| format!("{i:08}")).collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let mut r = rotated(&refs, 3000);
        let _ = search_rotated(&mut r, &RangeQuery::between("00001000", "00002000"), 10).unwrap();
        // 1 read of D[0], 1 corner probe, 2 binary searches of ≤ 14 reads.
        assert!(r.reads <= 2 + 2 * 14, "reads = {}", r.reads);
    }

    #[test]
    fn access_pattern_is_offset_independent() {
        // The indices probed by the binary searches must not depend on the
        // secret rotation offset (that is the whole point of Algorithm 3).
        let values: Vec<String> = (0..1024).map(|i| format!("{i:06}")).collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let mut read_counts = std::collections::HashSet::new();
        for offset in [0usize, 1, 97, 511, 1023] {
            let mut r = rotated(&refs, offset);
            let _ = search_rotated(&mut r, &RangeQuery::between("000100", "000200"), 8).unwrap();
            read_counts.insert(r.reads);
        }
        // Same dictionary size, same bounds -> identical number of loads
        // regardless of the offset.
        assert_eq!(read_counts.len(), 1, "loads varied: {read_counts:?}");
    }
}
