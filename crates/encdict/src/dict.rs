//! Encrypted (and plaintext-twin) dictionary layouts.
//!
//! Paper §5: *"We further split each dictionary into a dictionary head and
//! dictionary tail. The dictionary tail contains variable length values
//! that are encrypted with AES-128 in GCM mode. The values are stored
//! sequentially in a random order. The dictionary head contains fixed size
//! offsets to the dictionary tail and the values are ordered according to
//! the selected encrypted dictionary. This split is done to support
//! variable length data while enabling an efficient binary search."*
//!
//! Both buffers live in the *untrusted* realm; the enclave reads them entry
//! by entry through [`enclave_sim::TrustedEnv::load`].

use crate::error::EncdictError;
use crate::kind::EdKind;
use enclave_sim::UntrustedMemory;

/// Size of one head entry: a `u64` tail offset plus a `u32` ciphertext
/// length.
pub const HEAD_ENTRY_BYTES: usize = 12;

/// An encrypted dictionary `eD`: head/tail layout plus column metadata.
///
/// The metadata (`table_name`, `col_name`, `max_len`) is what the query
/// evaluation engine attaches in step 7 of Fig. 5 so the enclave can derive
/// the column key `SK_D`.
#[derive(Debug, Clone)]
pub struct EncryptedDictionary {
    kind: EdKind,
    table_name: String,
    col_name: String,
    max_len: usize,
    len: usize,
    head: Vec<u8>,
    tail: Vec<u8>,
    /// `PAE_Enc(SK_D, rndOffset)` for rotated kinds (ED2/ED5/ED8).
    enc_rnd_offset: Option<Vec<u8>>,
}

impl EncryptedDictionary {
    /// Assembles a dictionary from its parts (used by the builder).
    ///
    /// # Errors
    ///
    /// Returns [`EncdictError::CorruptDictionary`] if the head length is not
    /// a multiple of the entry size or disagrees with `len`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        kind: EdKind,
        table_name: String,
        col_name: String,
        max_len: usize,
        len: usize,
        head: Vec<u8>,
        tail: Vec<u8>,
        enc_rnd_offset: Option<Vec<u8>>,
    ) -> Result<Self, EncdictError> {
        if head.len() != len * HEAD_ENTRY_BYTES {
            return Err(EncdictError::CorruptDictionary("head size mismatch"));
        }
        Ok(EncryptedDictionary {
            kind,
            table_name,
            col_name,
            max_len,
            len,
            head,
            tail,
            enc_rnd_offset,
        })
    }

    /// The encrypted-dictionary kind (ED1–ED9).
    pub fn kind(&self) -> EdKind {
        self.kind
    }

    /// The table this column belongs to (key-derivation metadata).
    pub fn table_name(&self) -> &str {
        &self.table_name
    }

    /// The column name (key-derivation metadata).
    pub fn col_name(&self) -> &str {
        &self.col_name
    }

    /// The column's fixed maximal value length in bytes.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Number of dictionary entries `|D|`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Untrusted-memory view of the head buffer.
    pub fn head_mem(&self) -> UntrustedMemory<'_> {
        UntrustedMemory::new(&self.head)
    }

    /// Untrusted-memory view of the tail buffer.
    pub fn tail_mem(&self) -> UntrustedMemory<'_> {
        UntrustedMemory::new(&self.tail)
    }

    /// This dictionary as a [`crate::enclave_ops::SegmentRef`].
    pub fn segment_ref(&self) -> crate::enclave_ops::SegmentRef<'_> {
        crate::enclave_ops::SegmentRef {
            head: self.head_mem(),
            tail: self.tail_mem(),
            len: self.len,
        }
    }

    /// The encrypted rotation offset, present for rotated kinds.
    pub fn enc_rnd_offset(&self) -> Option<&[u8]> {
        self.enc_rnd_offset.as_deref()
    }

    /// Raw ciphertext bytes of entry `i` (untrusted code can copy but not
    /// decrypt them; used for result rendering, Fig. 5 step 12).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` or the head is corrupt.
    pub fn ciphertext(&self, i: usize) -> &[u8] {
        let (offset, clen) = head_entry(&self.head, i);
        &self.tail[offset as usize..offset as usize + clen as usize]
    }

    /// Total storage size in bytes (head + tail + rotation ciphertext):
    /// the ED rows of the paper's Table 6.
    pub fn storage_size(&self) -> usize {
        self.head.len() + self.tail.len() + self.enc_rnd_offset.as_ref().map_or(0, Vec::len)
    }
}

/// Parses head entry `i` from a head buffer.
///
/// # Panics
///
/// Panics if the buffer is too short.
#[inline]
pub fn head_entry(head: &[u8], i: usize) -> (u64, u32) {
    let base = i * HEAD_ENTRY_BYTES;
    let offset = u64::from_le_bytes(head[base..base + 8].try_into().unwrap());
    let clen = u32::from_le_bytes(head[base + 8..base + 12].try_into().unwrap());
    (offset, clen)
}

/// Serializes a head entry.
#[inline]
pub fn write_head_entry(head: &mut Vec<u8>, offset: u64, len: u32) {
    head.extend_from_slice(&offset.to_le_bytes());
    head.extend_from_slice(&len.to_le_bytes());
}

/// The plaintext twin used by PlainDBDB (§6.3): identical head/tail layout
/// and search algorithms, but values and the rotation offset are stored in
/// the clear and no enclave is involved.
#[derive(Debug, Clone)]
pub struct PlainDictionary {
    kind: EdKind,
    max_len: usize,
    len: usize,
    head: Vec<u8>,
    tail: Vec<u8>,
    rnd_offset: Option<u64>,
}

impl PlainDictionary {
    pub(crate) fn from_parts(
        kind: EdKind,
        max_len: usize,
        len: usize,
        head: Vec<u8>,
        tail: Vec<u8>,
        rnd_offset: Option<u64>,
    ) -> Result<Self, EncdictError> {
        if head.len() != len * HEAD_ENTRY_BYTES {
            return Err(EncdictError::CorruptDictionary("head size mismatch"));
        }
        Ok(PlainDictionary {
            kind,
            max_len,
            len,
            head,
            tail,
            rnd_offset,
        })
    }

    /// The dictionary kind whose layout this plaintext twin mirrors.
    pub fn kind(&self) -> EdKind {
        self.kind
    }

    /// The column's fixed maximal value length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The plaintext rotation offset for rotated kinds.
    pub fn rnd_offset(&self) -> Option<u64> {
        self.rnd_offset
    }

    /// The plaintext value of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn value(&self, i: usize) -> &[u8] {
        let (offset, len) = head_entry(&self.head, i);
        &self.tail[offset as usize..offset as usize + len as usize]
    }

    /// Storage size in bytes (head + tail).
    pub fn storage_size(&self) -> usize {
        self.head.len() + self.tail.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_entry_roundtrip() {
        let mut head = Vec::new();
        write_head_entry(&mut head, 42, 7);
        write_head_entry(&mut head, 99, 13);
        assert_eq!(head.len(), 2 * HEAD_ENTRY_BYTES);
        assert_eq!(head_entry(&head, 0), (42, 7));
        assert_eq!(head_entry(&head, 1), (99, 13));
    }

    #[test]
    fn from_parts_validates_head_size() {
        let err = EncryptedDictionary::from_parts(
            EdKind::Ed1,
            "t".into(),
            "c".into(),
            10,
            2,
            vec![0; HEAD_ENTRY_BYTES], // one entry, len says two
            vec![],
            None,
        )
        .unwrap_err();
        assert!(matches!(err, EncdictError::CorruptDictionary(_)));
    }

    #[test]
    fn plain_dictionary_value_access() {
        let mut head = Vec::new();
        let mut tail = Vec::new();
        for v in [&b"abc"[..], b"de"] {
            write_head_entry(&mut head, tail.len() as u64, v.len() as u32);
            tail.extend_from_slice(v);
        }
        let d = PlainDictionary::from_parts(EdKind::Ed1, 10, 2, head, tail, None).unwrap();
        assert_eq!(d.value(0), b"abc");
        assert_eq!(d.value(1), b"de");
        assert_eq!(d.storage_size(), 2 * HEAD_ENTRY_BYTES + 5);
    }
}
