//! The nine encrypted dictionaries of EncDBDB (ED1–ED9).
//!
//! This crate is the paper's primary contribution: encrypted dictionaries
//! for column-oriented, dictionary-encoding-based, in-memory databases.
//! Each column of a dataset can be protected with one of nine dictionary
//! types, the cross product of three *repetition* options (frequency
//! revealing / smoothing / hiding) and three *order* options (sorted /
//! rotated / unsorted), trading security against latency and storage
//! (paper Table 2).
//!
//! Module map:
//!
//! * [`kind`] — ED1–ED9 and their leakage classification (Tables 2–5,
//!   Figure 6).
//! * [`build`] — `EncDB`: splitting and encrypting a plaintext column
//!   (§4.1), including the PlainDBDB twin.
//! * [`bucket`] — the frequency-smoothing random experiment (Algorithm 5).
//! * [`search`] — `EnclDictSearch`: binary search (Algorithm 1), the
//!   rotation-oblivious special binary search (Algorithms 2+3), and the
//!   linear scan (Algorithm 4), all written against a reader abstraction
//!   shared by the enclave and PlainDBDB.
//! * [`avsearch`] — `AttrVectSearch` in the untrusted realm, serial or
//!   parallel.
//! * [`enclave_ops`] — the trusted computing base: [`enclave_ops::DictEnclave`]
//!   hosting the search logic inside the simulated enclave.
//! * [`encode`]/[`bigint`] — the order-preserving `ENCODE` operation and
//!   the fixed-width big integer replacing the paper's C++ bigint library.
//! * [`dict`] — the §5 head/tail dictionary layout.
//! * [`range`] — range queries and their encrypted wire form.
//! * [`leakage`] — attacker-view analysis backing the security evaluation.
//! * [`dynamic`] — the encrypted delta store and protected merge (§4.3).
//! * [`batch`] — owned request forms for the cross-session ECALL
//!   batching scheduler (several sessions' calls coalesced into one
//!   enclave transition).
//! * [`aggregate`] — the trusted aggregation core behind the analytic
//!   query engine (GROUP BY / SUM / MIN / MAX / AVG over ValueID
//!   histograms, one decryption per distinct touched ValueID).
//!
//! # Example: one encrypted range query
//!
//! ```
//! use colstore::column::Column;
//! use encdbdb_crypto::hkdf::derive_column_key;
//! use encdbdb_crypto::{Key128, Pae};
//! use encdict::avsearch::{search, Parallelism, SetSearchStrategy};
//! use encdict::build::{build_encrypted, BuildParams};
//! use encdict::enclave_ops::DictEnclave;
//! use encdict::kind::EdKind;
//! use encdict::range::{EncryptedRange, RangeQuery};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // Data owner: master key and per-column key.
//! let skdb = Key128::generate(&mut rng);
//! let sk_d = derive_column_key(&skdb, "people", "fname");
//!
//! // EncDB: split + encrypt the column as ED5 (smoothed, rotated).
//! let col = Column::from_strs(
//!     "fname", 12,
//!     ["Hans", "Jessica", "Archie", "Ella", "Jessica", "Jessica"],
//! )?;
//! let params = BuildParams {
//!     table_name: "people".into(), col_name: "fname".into(), bs_max: 3,
//! };
//! let (dict, av) = build_encrypted(&col, EdKind::Ed5, &params, &sk_d, &mut rng)?;
//!
//! // DBaaS side: enclave with the provisioned master key.
//! let mut enclave = DictEnclave::with_seed(8);
//! enclave.provision_direct(skdb);
//!
//! // Proxy: encrypt the range; server: dictionary + attribute vector search.
//! let pae = Pae::new(&sk_d);
//! let tau = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::between("Archie", "Hans"));
//! let vids = enclave.search(&dict, &tau)?;
//! let rids = search(&av, &vids, dict.len(), SetSearchStrategy::PaperLinear, Parallelism::Serial);
//! assert_eq!(rids.iter().map(|r| r.0).collect::<Vec<_>>(), vec![0, 2, 3]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod avsearch;
pub mod batch;
pub mod bigint;
pub mod bucket;
pub mod build;
pub mod dict;
pub mod dynamic;
pub mod enclave_ops;
pub mod encode;
pub mod error;
pub mod kind;
pub mod leakage;
pub mod persist;
pub mod plain;
pub mod range;
pub mod search;

pub use dict::{EncryptedDictionary, PlainDictionary};
pub use enclave_ops::{CacheTag, DictEnclave};
pub use error::EncdictError;
pub use kind::{EdKind, LeakageLevel, OrderOption, RepetitionOption};
pub use range::{EncryptedRange, RangeBound, RangeQuery};
pub use search::{DictSearchResult, VidRange};
