//! `EncDB` — building the nine encrypted dictionaries from a plaintext
//! column (paper §4.1).
//!
//! Build pipeline for a column `C` and a kind `EDn`:
//!
//! 1. **Repetition expansion** — decide how many dictionary entries each
//!    unique value gets and assign every occurrence of the value to one of
//!    them: revealing (one entry per unique), smoothing (Algorithm 5
//!    buckets of at most `bs_max` occurrences), hiding (one entry per
//!    occurrence, each used exactly once).
//! 2. **Ordering** — sort entries lexicographically (repetition ties broken
//!    randomly), sort + rotate by a uniform random secret offset, or
//!    shuffle.
//! 3. **Attribute vector** — remap every row's assignment through the
//!    ordering permutation so the split stays correct (Definition 1).
//! 4. **Encryption** — PAE-encrypt every entry individually under `SK_D`
//!    with a fresh random IV, storing ciphertexts in the tail in a random
//!    order with head offsets in dictionary order (§5).
//!
//! [`build_plain`] runs steps 1–3 identically but stores plaintext values —
//! producing the PlainDBDB twin the paper uses as its second baseline.

use crate::dict::{write_head_entry, EncryptedDictionary, PlainDictionary};
use crate::error::EncdictError;
use crate::kind::{EdKind, OrderOption, RepetitionOption};
use colstore::column::Column;
use colstore::dictionary::{AttributeVector, ValueId};
use encdbdb_crypto::keys::Key128;
use encdbdb_crypto::Pae;
use rand::seq::SliceRandom;
use rand::Rng;

/// AAD under which dictionary values are encrypted.
pub const DICT_VALUE_AAD: &[u8] = b"encdbdb/dict-value/v1";
/// AAD under which the rotation offset is encrypted.
pub const ROT_OFFSET_AAD: &[u8] = b"encdbdb/rot-offset/v1";

/// Parameters for building an encrypted dictionary.
#[derive(Debug, Clone)]
pub struct BuildParams {
    /// Table name (key-derivation metadata).
    pub table_name: String,
    /// Column name (key-derivation metadata).
    pub col_name: String,
    /// Maximal bucket size for frequency smoothing (ED4–ED6); ignored by
    /// the other kinds. The paper's evaluation uses 10.
    pub bs_max: usize,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams {
            table_name: "t".to_string(),
            col_name: "c".to_string(),
            bs_max: 10,
        }
    }
}

/// Intermediate plaintext dictionary produced by steps 1–3.
struct PlainSplit {
    /// Plaintext dictionary values in final dictionary order.
    entries: Vec<Vec<u8>>,
    /// The attribute vector (already remapped to final order).
    av: AttributeVector,
    /// Rotation offset, for rotated kinds.
    rnd_offset: Option<u64>,
}

/// Steps 1–3: repetition expansion + ordering + attribute vector.
fn split_column<R: Rng + ?Sized>(
    column: &Column,
    kind: EdKind,
    bs_max: usize,
    rng: &mut R,
) -> Result<PlainSplit, EncdictError> {
    // Group occurrence row-indices by value, preserving a deterministic
    // (first-occurrence) grouping order.
    let mut order: Vec<&[u8]> = Vec::new();
    let mut groups: std::collections::HashMap<&[u8], Vec<u32>> = std::collections::HashMap::new();
    for (j, v) in column.iter().enumerate() {
        let e = groups.entry(v).or_default();
        if e.is_empty() {
            order.push(v);
        }
        e.push(j as u32);
    }

    // Step 1: repetition expansion. `entries[k]` is a plaintext dictionary
    // entry; `assignment[j]` maps row j to its entry index.
    let mut entries: Vec<&[u8]> = Vec::new();
    let mut assignment: Vec<u32> = vec![0; column.len()];
    let mut slots: Vec<u32> = Vec::new();
    for v in &order {
        let occ = &groups[v];
        let sizes: Vec<usize> = match kind.repetition() {
            RepetitionOption::Revealing => vec![occ.len()],
            RepetitionOption::Smoothing => crate::bucket::rnd_bucket_sizes(rng, occ.len(), bs_max)?,
            RepetitionOption::Hiding => vec![1; occ.len()],
        };
        slots.clear();
        for size in &sizes {
            let entry_idx = entries.len() as u32;
            entries.push(v);
            slots.extend(std::iter::repeat_n(entry_idx, *size));
        }
        // Random assignment of occurrences to bucket slots ("for each
        // Ci ∈ oc(C, v), it randomly inserts one of the #bs possible
        // ValueIDs"; each ValueID used exactly as often as its bucket size).
        slots.shuffle(rng);
        for (row, entry_idx) in occ.iter().zip(slots.iter()) {
            assignment[*row as usize] = *entry_idx;
        }
    }

    // Step 2: ordering. `position[k]` = final dictionary position of entry k.
    let n = entries.len();
    let mut position: Vec<u32> = (0..n as u32).collect();
    let mut rnd_offset = None;
    match kind.order() {
        OrderOption::Sorted | OrderOption::Rotated => {
            // Sort entry indices by value; the order of repetitions (equal
            // values) is randomized as EncDB 4 prescribes.
            let mut idx: Vec<(u32, u64)> = (0..n as u32).map(|k| (k, rng.gen())).collect();
            idx.sort_by(|a, b| {
                entries[a.0 as usize]
                    .cmp(entries[b.0 as usize])
                    .then(a.1.cmp(&b.1))
            });
            let offset = if kind.order() == OrderOption::Rotated {
                let off = if n == 0 {
                    0
                } else {
                    rng.gen_range(0..n as u64)
                };
                rnd_offset = Some(off);
                off
            } else {
                0
            };
            for (sorted_pos, (k, _)) in idx.iter().enumerate() {
                position[*k as usize] = ((sorted_pos as u64 + offset) % n.max(1) as u64) as u32;
            }
        }
        OrderOption::Unsorted => {
            position.shuffle(rng);
        }
    }

    // Step 3: final entries + attribute vector.
    let mut final_entries: Vec<Vec<u8>> = vec![Vec::new(); n];
    for (k, pos) in position.iter().enumerate() {
        final_entries[*pos as usize] = entries[k].to_vec();
    }
    let av: AttributeVector = assignment
        .iter()
        .map(|k| ValueId(position[*k as usize]))
        .collect();

    Ok(PlainSplit {
        entries: final_entries,
        av,
        rnd_offset,
    })
}

/// `EncDB` — splits and encrypts `column` as kind `kind` under the column
/// key `sk_d` (derived by the data owner from `SK_DB` + metadata).
///
/// Returns the encrypted dictionary and the plaintext attribute vector —
/// the attribute vector stores only ValueIDs, which the paper keeps
/// unencrypted in the untrusted realm.
///
/// # Errors
///
/// Returns [`EncdictError::ValueTooLong`] if a value exceeds the column
/// maximum, or [`EncdictError::InvalidBucketSize`] for `bs_max == 0` with a
/// smoothing kind.
pub fn build_encrypted<R: Rng + ?Sized>(
    column: &Column,
    kind: EdKind,
    params: &BuildParams,
    sk_d: &Key128,
    rng: &mut R,
) -> Result<(EncryptedDictionary, AttributeVector), EncdictError> {
    let split = split_column(column, kind, params.bs_max, rng)?;
    let pae = Pae::new(sk_d);
    let n = split.entries.len();

    // §5: tail ciphertexts in random order, head offsets in dictionary order.
    let mut tail_order: Vec<u32> = (0..n as u32).collect();
    tail_order.shuffle(rng);
    let mut tail: Vec<u8> = Vec::new();
    let mut locations: Vec<(u64, u32)> = vec![(0, 0); n];
    for &dict_pos in &tail_order {
        let ct = pae.encrypt_with_rng(rng, &split.entries[dict_pos as usize], DICT_VALUE_AAD);
        locations[dict_pos as usize] = (tail.len() as u64, ct.len() as u32);
        tail.extend_from_slice(ct.as_bytes());
    }
    let mut head = Vec::with_capacity(n * crate::dict::HEAD_ENTRY_BYTES);
    for (offset, len) in &locations {
        write_head_entry(&mut head, *offset, *len);
    }

    let enc_rnd_offset = split.rnd_offset.map(|off| {
        pae.encrypt_with_rng(rng, &off.to_le_bytes(), ROT_OFFSET_AAD)
            .into_bytes()
    });

    let dict = EncryptedDictionary::from_parts(
        kind,
        params.table_name.clone(),
        params.col_name.clone(),
        column.max_len(),
        n,
        head,
        tail,
        enc_rnd_offset,
    )?;
    Ok((dict, split.av))
}

/// Builds the PlainDBDB twin: same split, same layout, plaintext values.
///
/// # Errors
///
/// As [`build_encrypted`].
pub fn build_plain<R: Rng + ?Sized>(
    column: &Column,
    kind: EdKind,
    params: &BuildParams,
    rng: &mut R,
) -> Result<(PlainDictionary, AttributeVector), EncdictError> {
    let split = split_column(column, kind, params.bs_max, rng)?;
    let n = split.entries.len();
    let mut tail_order: Vec<u32> = (0..n as u32).collect();
    tail_order.shuffle(rng);
    let mut tail: Vec<u8> = Vec::new();
    let mut locations: Vec<(u64, u32)> = vec![(0, 0); n];
    for &dict_pos in &tail_order {
        let v = &split.entries[dict_pos as usize];
        locations[dict_pos as usize] = (tail.len() as u64, v.len() as u32);
        tail.extend_from_slice(v);
    }
    let mut head = Vec::with_capacity(n * crate::dict::HEAD_ENTRY_BYTES);
    for (offset, len) in &locations {
        write_head_entry(&mut head, *offset, *len);
    }
    let dict =
        PlainDictionary::from_parts(kind, column.max_len(), n, head, tail, split.rnd_offset)?;
    Ok((dict, split.av))
}

/// Verifies split correctness (Definition 1) of a *plaintext* twin against
/// its source column: `∀j: D[AV[j]] = C[j]`.
pub fn verify_plain_split(column: &Column, dict: &PlainDictionary, av: &AttributeVector) -> bool {
    if av.len() != column.len() {
        return false;
    }
    (0..column.len()).all(|j| {
        let vid = av.as_slice()[j] as usize;
        vid < dict.len() && dict.value(vid) == column.value(j)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig3_column() -> Column {
        // Paper Figure 3 (a).
        Column::from_strs(
            "FName",
            12,
            ["Hans", "Jessica", "Archie", "Ella", "Jessica", "Jessica"],
        )
        .unwrap()
    }

    fn params() -> BuildParams {
        BuildParams {
            table_name: "t1".into(),
            col_name: "FName".into(),
            bs_max: 3,
        }
    }

    #[test]
    fn plain_split_correct_for_all_kinds() {
        let col = fig3_column();
        let mut rng = StdRng::seed_from_u64(1);
        for kind in EdKind::ALL {
            let (dict, av) = build_plain(&col, kind, &params(), &mut rng).unwrap();
            assert!(
                verify_plain_split(&col, &dict, &av),
                "split correctness violated for {kind}"
            );
        }
    }

    #[test]
    fn dictionary_sizes_match_table3() {
        let col = fig3_column(); // 6 rows, 4 uniques
        let mut rng = StdRng::seed_from_u64(2);
        // Revealing: |D| = |un(C)| = 4.
        let (d1, _) = build_plain(&col, EdKind::Ed1, &params(), &mut rng).unwrap();
        assert_eq!(d1.len(), 4);
        // Hiding: |D| = |AV| = 6.
        let (d7, av7) = build_plain(&col, EdKind::Ed7, &params(), &mut rng).unwrap();
        assert_eq!(d7.len(), 6);
        assert_eq!(av7.len(), 6);
        // Smoothing: between the two.
        let (d4, _) = build_plain(&col, EdKind::Ed4, &params(), &mut rng).unwrap();
        assert!(d4.len() >= 4 && d4.len() <= 6, "got {}", d4.len());
    }

    #[test]
    fn sorted_kinds_produce_sorted_dictionaries() {
        let col = fig3_column();
        let mut rng = StdRng::seed_from_u64(3);
        for kind in [EdKind::Ed1, EdKind::Ed4, EdKind::Ed7] {
            let (dict, _) = build_plain(&col, kind, &params(), &mut rng).unwrap();
            for i in 1..dict.len() {
                assert!(
                    dict.value(i - 1) <= dict.value(i),
                    "{kind} not sorted at {i}"
                );
            }
        }
    }

    #[test]
    fn ed1_matches_figure_3b() {
        let col = fig3_column();
        let mut rng = StdRng::seed_from_u64(4);
        let (dict, av) = build_plain(&col, EdKind::Ed1, &params(), &mut rng).unwrap();
        // Figure 3 (b): sorted dictionary Archie, Ella, Hans, Jessica.
        assert_eq!(dict.value(0), b"Archie");
        assert_eq!(dict.value(1), b"Ella");
        assert_eq!(dict.value(2), b"Hans");
        assert_eq!(dict.value(3), b"Jessica");
        assert_eq!(av.as_slice(), &[2, 3, 0, 1, 3, 3]);
    }

    #[test]
    fn rotated_kinds_are_rotations_of_sorted_order() {
        let col = fig3_column();
        let mut rng = StdRng::seed_from_u64(5);
        let (dict, _) = build_plain(&col, EdKind::Ed2, &params(), &mut rng).unwrap();
        let off = dict.rnd_offset().expect("rotated kind has an offset") as usize;
        let n = dict.len();
        // Undo the rotation: sorted[j] = D[(j + off) % n].
        let unrotated: Vec<&[u8]> = (0..n).map(|j| dict.value((j + off) % n)).collect();
        for w in unrotated.windows(2) {
            assert!(w[0] <= w[1], "unrotated dictionary must be sorted");
        }
    }

    #[test]
    fn rotation_offset_varies_with_rng() {
        let col = fig3_column();
        let offsets: std::collections::HashSet<u64> = (0..32)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let (dict, _) = build_plain(&col, EdKind::Ed2, &params(), &mut rng).unwrap();
                dict.rnd_offset().unwrap()
            })
            .collect();
        assert!(offsets.len() > 1, "offset must be random");
    }

    #[test]
    fn smoothing_bounds_value_id_frequency() {
        // 1 value occurring 50 times, bs_max = 5: every ValueID must appear
        // at most 5 times in the attribute vector.
        let col = Column::from_strs("c", 4, std::iter::repeat_n("x", 50)).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let p = BuildParams {
            bs_max: 5,
            ..params()
        };
        let (_, av) = build_plain(&col, EdKind::Ed4, &p, &mut rng).unwrap();
        let mut counts = std::collections::HashMap::new();
        for &id in av.as_slice() {
            *counts.entry(id).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c <= 5), "counts: {counts:?}");
        assert_eq!(counts.values().sum::<usize>(), 50);
    }

    #[test]
    fn hiding_uses_every_value_id_exactly_once() {
        let col = fig3_column();
        let mut rng = StdRng::seed_from_u64(7);
        for kind in [EdKind::Ed7, EdKind::Ed8, EdKind::Ed9] {
            let (dict, av) = build_plain(&col, kind, &params(), &mut rng).unwrap();
            assert_eq!(dict.len(), av.len());
            let mut seen = vec![false; dict.len()];
            for &id in av.as_slice() {
                assert!(!seen[id as usize], "ValueID {id} reused in {kind}");
                seen[id as usize] = true;
            }
        }
    }

    #[test]
    fn encrypted_build_roundtrips_values() {
        let col = fig3_column();
        let mut rng = StdRng::seed_from_u64(8);
        let key = Key128::from_bytes([7; 16]);
        let pae = Pae::new(&key);
        for kind in EdKind::ALL {
            let (dict, av) = build_encrypted(&col, kind, &params(), &key, &mut rng).unwrap();
            assert_eq!(av.len(), col.len());
            // Decrypt every entry via the untrusted accessor and re-verify
            // split correctness on plaintexts.
            for j in 0..col.len() {
                let vid = av.as_slice()[j] as usize;
                let ct = dict.ciphertext(vid);
                let pt = pae.decrypt_bytes(ct, DICT_VALUE_AAD).unwrap();
                assert_eq!(pt, col.value(j), "row {j} kind {kind}");
            }
        }
    }

    #[test]
    fn encrypted_values_are_probabilistic() {
        // EncDB 4: equal plaintexts only produce equal ciphertexts with
        // negligible probability.
        let col = Column::from_strs("c", 4, ["x", "x", "x"]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let key = Key128::from_bytes([7; 16]);
        let (dict, _) = build_encrypted(&col, EdKind::Ed7, &params(), &key, &mut rng).unwrap();
        assert_ne!(dict.ciphertext(0), dict.ciphertext(1));
        assert_ne!(dict.ciphertext(1), dict.ciphertext(2));
    }

    #[test]
    fn rotated_encrypted_dict_carries_offset() {
        let col = fig3_column();
        let mut rng = StdRng::seed_from_u64(10);
        let key = Key128::from_bytes([7; 16]);
        for kind in [EdKind::Ed2, EdKind::Ed5, EdKind::Ed8] {
            let (dict, _) = build_encrypted(&col, kind, &params(), &key, &mut rng).unwrap();
            let enc = dict.enc_rnd_offset().expect("rotated kinds carry offset");
            let off_bytes = Pae::new(&key).decrypt_bytes(enc, ROT_OFFSET_AAD).unwrap();
            let off = u64::from_le_bytes(off_bytes.try_into().unwrap());
            assert!((off as usize) < dict.len());
        }
        for kind in [EdKind::Ed1, EdKind::Ed3, EdKind::Ed9] {
            let (dict, _) = build_encrypted(&col, kind, &params(), &key, &mut rng).unwrap();
            assert!(dict.enc_rnd_offset().is_none());
        }
    }

    #[test]
    fn empty_column_builds_empty_dictionary() {
        let col = Column::new("c", 8);
        let mut rng = StdRng::seed_from_u64(11);
        let key = Key128::from_bytes([7; 16]);
        for kind in EdKind::ALL {
            let (dict, av) = build_encrypted(&col, kind, &params(), &key, &mut rng).unwrap();
            assert!(dict.is_empty());
            assert!(av.is_empty());
        }
    }

    #[test]
    fn zero_bs_max_rejected_for_smoothing_only() {
        let col = fig3_column();
        let mut rng = StdRng::seed_from_u64(12);
        let p = BuildParams {
            bs_max: 0,
            ..params()
        };
        assert!(build_plain(&col, EdKind::Ed4, &p, &mut rng).is_err());
        // Non-smoothing kinds ignore bs_max.
        assert!(build_plain(&col, EdKind::Ed1, &p, &mut rng).is_ok());
    }
}
