//! Dynamic data: the encrypted delta store and protected merge (paper §4.3).
//!
//! "For EncDBDB, any encrypted dictionary can be used for the main store and
//! ED9 should be employed for the delta store. New entries can simply be
//! appended to a column of type ED9 by reencrypting the incoming value
//! inside the enclave with a random IV. A search in this delta store is done
//! by performing the linear scan ... neither the data order nor the
//! frequency is leaked during the insertion and search."
//!
//! The periodic merge re-encrypts every value, re-rotates rotated columns
//! and re-shuffles unsorted ones so the attacker cannot correlate the old
//! and new main stores.

use crate::build::BuildParams;
use crate::dict::{head_entry, write_head_entry, EncryptedDictionary};
use crate::enclave_ops::DictEnclave;
use crate::error::EncdictError;
use crate::kind::EdKind;
use crate::range::EncryptedRange;
use crate::search::DictSearchResult;
use colstore::delta::ValidityVector;
use colstore::dictionary::{AttributeVector, RecordId, ValueId};
use std::sync::Arc;

/// An immutable, cheaply clonable snapshot of one column's merged main
/// store, tagged with the *merge generation* (epoch) that produced it.
///
/// Readers that hold a `MainSnapshot` keep the underlying dictionary and
/// attribute vector alive through the [`Arc`]s even after a concurrent
/// compaction publishes the next generation, so in-flight queries drain on
/// a consistent view while new queries pick up the rebuilt store.
#[derive(Debug, Clone)]
pub struct MainSnapshot {
    epoch: u64,
    dict: Arc<EncryptedDictionary>,
    av: Arc<AttributeVector>,
}

impl MainSnapshot {
    /// Wraps a freshly built main store as generation `epoch`.
    pub fn new(epoch: u64, dict: EncryptedDictionary, av: AttributeVector) -> Self {
        MainSnapshot {
            epoch,
            dict: Arc::new(dict),
            av: Arc::new(av),
        }
    }

    /// The merge generation this snapshot belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The encrypted dictionary of this generation.
    pub fn dict(&self) -> &EncryptedDictionary {
        &self.dict
    }

    /// A shared handle to this generation's dictionary — what a batched
    /// ECALL request holds so the segment stays alive even if a concurrent
    /// compaction publishes the next generation mid-batch.
    pub fn dict_arc(&self) -> Arc<EncryptedDictionary> {
        Arc::clone(&self.dict)
    }

    /// The attribute vector of this generation.
    pub fn av(&self) -> &AttributeVector {
        &self.av
    }

    /// Wraps the output of a merge as the next generation (`epoch + 1`).
    pub fn next_generation(&self, dict: EncryptedDictionary, av: AttributeVector) -> Self {
        MainSnapshot::new(self.epoch + 1, dict, av)
    }
}

/// An encrypted delta store: an ED9 dictionary that grows by appending
/// re-encrypted values, with a trivial identity attribute vector and a
/// validity vector for deletions.
///
/// `Clone` produces a frozen snapshot of the store at its current length —
/// the delta-side half of a consistent read snapshot.
#[derive(Debug, Clone)]
pub struct EncryptedDeltaStore {
    table_name: String,
    col_name: String,
    max_len: usize,
    /// ED9 head/tail grown incrementally.
    head: Vec<u8>,
    tail: Vec<u8>,
    len: usize,
    validity: ValidityVector,
}

impl EncryptedDeltaStore {
    /// Creates an empty delta store for the given column.
    pub fn new(table_name: impl Into<String>, col_name: impl Into<String>, max_len: usize) -> Self {
        EncryptedDeltaStore {
            table_name: table_name.into(),
            col_name: col_name.into(),
            max_len,
            head: Vec::new(),
            tail: Vec::new(),
            len: 0,
            validity: ValidityVector::default(),
        }
    }

    /// Number of rows ever inserted (including invalidated ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid rows.
    pub fn valid_len(&self) -> usize {
        self.validity.count_valid()
    }

    /// Inserts an incoming ciphertext (PAE under the column key, produced
    /// by the proxy). The enclave re-encrypts it with a fresh IV so the
    /// stored bytes are unlinkable to the insert message.
    ///
    /// # Errors
    ///
    /// Propagates enclave failures (unprovisioned key, tampered value).
    pub fn insert(
        &mut self,
        enclave: &mut DictEnclave,
        incoming_ciphertext: &[u8],
    ) -> Result<RecordId, EncdictError> {
        let fresh = enclave.reencrypt(&self.table_name, &self.col_name, incoming_ciphertext)?;
        Ok(self.push_reencrypted(fresh.as_bytes()))
    }

    /// Appends a ciphertext that was *already* re-encrypted by the enclave
    /// (the two-step insert path: re-encrypt outside any storage lock, then
    /// append under it).
    pub fn push_reencrypted(&mut self, fresh: &[u8]) -> RecordId {
        let rid = RecordId(self.len as u32);
        write_head_entry(&mut self.head, self.tail.len() as u64, fresh.len() as u32);
        self.tail.extend_from_slice(fresh);
        self.len += 1;
        self.validity.push(true);
        rid
    }

    /// A frozen copy of the first `n` rows — the compaction input captured
    /// at a watermark while later inserts keep landing in the live store.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn prefix(&self, n: usize) -> Self {
        assert!(n <= self.len, "prefix {n} out of bounds {}", self.len);
        let tail_end = if n == self.len {
            self.tail.len()
        } else {
            head_entry(&self.head, n).0 as usize
        };
        EncryptedDeltaStore {
            table_name: self.table_name.clone(),
            col_name: self.col_name.clone(),
            max_len: self.max_len,
            head: self.head[..n * crate::dict::HEAD_ENTRY_BYTES].to_vec(),
            tail: self.tail[..tail_end].to_vec(),
            len: n,
            validity: self.validity.prefix(n),
        }
    }

    /// Drops the first `n` rows after a compaction consumed them: row
    /// `n + i` becomes row `i` and tail offsets are rebased.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn drain_prefix(&mut self, n: usize) {
        assert!(n <= self.len, "drain_prefix {n} out of bounds {}", self.len);
        if n == 0 {
            return;
        }
        let tail_base = if n == self.len {
            self.tail.len()
        } else {
            head_entry(&self.head, n).0 as usize
        };
        let mut head = Vec::with_capacity((self.len - n) * crate::dict::HEAD_ENTRY_BYTES);
        for i in n..self.len {
            let (offset, clen) = head_entry(&self.head, i);
            write_head_entry(&mut head, offset - tail_base as u64, clen);
        }
        self.head = head;
        self.tail = self.tail.split_off(tail_base);
        self.len -= n;
        self.validity = self.validity.suffix(n);
    }

    /// Marks a delta row deleted.
    ///
    /// # Panics
    ///
    /// Panics if `rid` is out of bounds.
    pub fn delete(&mut self, rid: RecordId) {
        self.validity.invalidate(rid.0 as usize);
    }

    /// Whether a delta row is valid.
    pub fn is_valid(&self, rid: RecordId) -> bool {
        self.validity.is_valid(rid.0 as usize)
    }

    /// Materializes the delta as an ED9 [`EncryptedDictionary`] view for
    /// searching (the identity attribute vector accompanies it).
    ///
    /// # Errors
    ///
    /// Returns [`EncdictError::CorruptDictionary`] if internal state is
    /// inconsistent (never expected).
    pub fn as_dictionary(&self) -> Result<(EncryptedDictionary, AttributeVector), EncdictError> {
        let dict = EncryptedDictionary::from_parts(
            EdKind::Ed9,
            self.table_name.clone(),
            self.col_name.clone(),
            self.max_len,
            self.len,
            self.head.clone(),
            self.tail.clone(),
            None,
        )?;
        let av: AttributeVector = (0..self.len as u32).map(ValueId).collect();
        Ok((dict, av))
    }

    /// Searches the delta (ED9 linear scan) and filters results through the
    /// validity vector.
    ///
    /// # Errors
    ///
    /// Propagates enclave failures.
    pub fn search(
        &self,
        enclave: &mut DictEnclave,
        range: &EncryptedRange,
    ) -> Result<Vec<RecordId>, EncdictError> {
        self.search_multi(enclave, std::slice::from_ref(range), None)
    }

    /// Searches the delta against a whole disjunction in a *single* ECALL
    /// (one linear scan answers every range at once), unions the matches,
    /// and filters through the validity vector. `cache` enables the
    /// in-enclave decrypted-value cache for this delta generation.
    ///
    /// # Errors
    ///
    /// Propagates enclave failures.
    pub fn search_multi(
        &self,
        enclave: &mut DictEnclave,
        ranges: &[EncryptedRange],
        cache: Option<crate::enclave_ops::CacheTag>,
    ) -> Result<Vec<RecordId>, EncdictError> {
        let (dict, _av) = self.as_dictionary()?;
        let results = enclave.search_multi(&dict, ranges, cache)?;
        Ok(self.filter_results(&results))
    }

    /// The untrusted half of a delta search: unions the enclave's
    /// per-range results over the identity attribute vector and filters
    /// through the validity vector. Split out so the batched ECALL path
    /// (which runs the enclave half through the scheduler) produces
    /// bit-identical results to [`EncryptedDeltaStore::search_multi`].
    pub fn filter_results(&self, results: &[DictSearchResult]) -> Vec<RecordId> {
        let av: AttributeVector = (0..self.len as u32).map(ValueId).collect();
        let rids = crate::avsearch::search_union(
            &av,
            results,
            self.len,
            crate::avsearch::SetSearchStrategy::PaperLinear,
            crate::avsearch::Parallelism::Serial,
        );
        rids.into_iter()
            .filter(|r| self.validity.is_valid(r.0 as usize))
            .collect()
    }

    /// Untrusted-memory view of the delta head (for enclave requests).
    pub fn head_mem(&self) -> enclave_sim::UntrustedMemory<'_> {
        enclave_sim::UntrustedMemory::new(&self.head)
    }

    /// Untrusted-memory view of the delta tail (for enclave requests).
    pub fn tail_mem(&self) -> enclave_sim::UntrustedMemory<'_> {
        enclave_sim::UntrustedMemory::new(&self.tail)
    }

    /// An owned copy of this delta store's segment bytes, for batched
    /// aggregate / join requests that outlive the caller's snapshot borrow.
    pub fn owned_segment(&self) -> crate::batch::OwnedSegment {
        crate::batch::OwnedSegment {
            head: self.head.clone(),
            tail: self.tail.clone(),
            len: self.len,
        }
    }

    /// This delta store as a [`crate::enclave_ops::SegmentRef`].
    pub fn segment_ref(&self) -> crate::enclave_ops::SegmentRef<'_> {
        crate::enclave_ops::SegmentRef {
            head: self.head_mem(),
            tail: self.tail_mem(),
            len: self.len,
        }
    }

    /// The stored ciphertext of a delta row (for result rendering).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn ciphertext(&self, rid: RecordId) -> &[u8] {
        let (offset, clen) = crate::dict::head_entry(&self.head, rid.0 as usize);
        &self.tail[offset as usize..offset as usize + clen as usize]
    }

    /// Storage size in bytes.
    pub fn storage_size(&self) -> usize {
        self.head.len() + self.tail.len()
    }
}

/// The result of a dictionary search over main + delta (paper §4.3: "a read
/// query ... is executed on both stores normally and then the results are
/// merged while checking the validity of the entries").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinedSearchResult {
    /// Matching RecordIDs in the main store (validity already applied by
    /// the caller, which owns the main validity vector).
    pub main: Vec<RecordId>,
    /// Matching, valid RecordIDs in the delta store.
    pub delta: Vec<RecordId>,
}

/// Merges the delta store into a fresh main store (paper §4.3).
///
/// The merge runs *inside the enclave* (one ECALL): it decrypts all valid
/// main and delta values, rebuilds the dictionary with fresh IVs, a fresh
/// rotation and a fresh shuffle, so old and new stores are unlinkable from
/// the untrusted realm. Returns the new main dictionary + attribute vector;
/// the delta store is reset. `main_validity` masks deleted main rows.
///
/// Merging an **empty** delta over a fully valid main store is a cheap
/// no-op: the main store is returned unchanged without entering the
/// enclave (zero values decrypted). The old and new stores are then
/// trivially linkable — but they are byte-identical, so there is nothing
/// new to learn; the re-randomizing rebuild only matters when content
/// actually changed (see DESIGN.md §9).
///
/// # Errors
///
/// Propagates decryption and build failures.
pub fn merge_delta(
    enclave: &mut DictEnclave,
    main_dict: &EncryptedDictionary,
    main_av: &AttributeVector,
    main_validity: &ValidityVector,
    delta: &mut EncryptedDeltaStore,
    params: &BuildParams,
    kind: EdKind,
) -> Result<(EncryptedDictionary, AttributeVector), EncdictError> {
    if delta.is_empty() && main_validity.count_valid() == main_av.len() {
        return Ok((main_dict.clone(), main_av.clone()));
    }
    let req = crate::enclave_ops::MergeRequest {
        table_name: main_dict.table_name(),
        col_name: main_dict.col_name(),
        max_len: main_dict.max_len(),
        kind,
        bs_max: params.bs_max,
        main_head: main_dict.head_mem(),
        main_tail: main_dict.tail_mem(),
        main_len: main_dict.len(),
        main_av: main_av.as_slice(),
        main_valid: main_validity,
        delta_head: enclave_sim::UntrustedMemory::new(&delta.head),
        delta_tail: enclave_sim::UntrustedMemory::new(&delta.tail),
        delta_len: delta.len,
        delta_valid: &delta.validity,
    };
    let rebuilt = enclave.merge(req)?;
    *delta = EncryptedDeltaStore::new(
        main_dict.table_name().to_string(),
        main_dict.col_name().to_string(),
        main_dict.max_len(),
    );
    Ok(rebuilt)
}

/// Convenience: run a search against main and delta and combine (validity
/// of the main store applied via `main_validity`).
///
/// # Errors
///
/// Propagates enclave failures from either store.
pub fn search_combined(
    enclave: &mut DictEnclave,
    main_dict: &EncryptedDictionary,
    main_av: &AttributeVector,
    main_validity: &ValidityVector,
    delta: &EncryptedDeltaStore,
    range: &EncryptedRange,
) -> Result<CombinedSearchResult, EncdictError> {
    let main_result: DictSearchResult = enclave.search(main_dict, range)?;
    let main_rids = crate::avsearch::search(
        main_av,
        &main_result,
        main_dict.len(),
        crate::avsearch::SetSearchStrategy::PaperLinear,
        crate::avsearch::Parallelism::Serial,
    );
    let main = main_rids
        .into_iter()
        .filter(|r| main_validity.is_valid(r.0 as usize))
        .collect();
    let delta_rids = delta.search(enclave, range)?;
    Ok(CombinedSearchResult {
        main,
        delta: delta_rids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_encrypted;
    use crate::enclave_ops::encrypt_value_for_column;
    use crate::range::RangeQuery;
    use colstore::column::Column;
    use encdbdb_crypto::hkdf::derive_column_key;
    use encdbdb_crypto::{Key128, Pae};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        enclave: DictEnclave,
        skdb: Key128,
        pae: Pae,
        params: BuildParams,
        rng: StdRng,
    }

    fn fixture(seed: u64) -> Fixture {
        let skdb = Key128::from_bytes([3; 16]);
        let sk_d = derive_column_key(&skdb, "t", "c");
        let mut enclave = DictEnclave::with_seed(seed);
        enclave.provision_direct(skdb.clone());
        Fixture {
            enclave,
            skdb,
            pae: Pae::new(&sk_d),
            params: BuildParams {
                table_name: "t".into(),
                col_name: "c".into(),
                bs_max: 3,
            },
            rng: StdRng::seed_from_u64(seed + 1),
        }
    }

    #[test]
    fn delta_insert_and_search() {
        let mut f = fixture(1);
        let mut delta = EncryptedDeltaStore::new("t", "c", 12);
        for v in ["mango", "apple", "peach", "apple"] {
            let ct = encrypt_value_for_column(&f.pae, &mut f.rng, v.as_bytes());
            delta.insert(&mut f.enclave, ct.as_bytes()).unwrap();
        }
        let range = EncryptedRange::encrypt(&f.pae, &mut f.rng, &RangeQuery::equals("apple"));
        let rids = delta.search(&mut f.enclave, &range).unwrap();
        assert_eq!(rids.iter().map(|r| r.0).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn delta_delete_hides_rows() {
        let mut f = fixture(2);
        let mut delta = EncryptedDeltaStore::new("t", "c", 12);
        let ct = encrypt_value_for_column(&f.pae, &mut f.rng, b"gone");
        let rid = delta.insert(&mut f.enclave, ct.as_bytes()).unwrap();
        delta.delete(rid);
        let range = EncryptedRange::encrypt(&f.pae, &mut f.rng, &RangeQuery::equals("gone"));
        assert!(delta.search(&mut f.enclave, &range).unwrap().is_empty());
        assert_eq!(delta.valid_len(), 0);
        assert_eq!(delta.len(), 1);
    }

    #[test]
    fn stored_bytes_unlinkable_to_insert_message() {
        let mut f = fixture(3);
        let mut delta = EncryptedDeltaStore::new("t", "c", 12);
        let incoming = encrypt_value_for_column(&f.pae, &mut f.rng, b"secret");
        let rid = delta.insert(&mut f.enclave, incoming.as_bytes()).unwrap();
        assert_ne!(delta.ciphertext(rid), incoming.as_bytes());
    }

    #[test]
    fn combined_search_and_merge_flow() {
        let mut f = fixture(4);
        let sk_d = derive_column_key(&f.skdb, "t", "c");
        // Main store: 5 values as ED2.
        let col = Column::from_strs("c", 12, ["b", "d", "a", "c", "e"]).unwrap();
        let (main_dict, main_av) =
            build_encrypted(&col, EdKind::Ed2, &f.params, &sk_d, &mut f.rng).unwrap();
        let mut main_validity = ValidityVector::all_valid(5);
        // Delete main row 1 ("d"), insert "cc" and "bb" into the delta.
        main_validity.invalidate(1);
        let mut delta = EncryptedDeltaStore::new("t", "c", 12);
        for v in ["cc", "bb"] {
            let ct = encrypt_value_for_column(&f.pae, &mut f.rng, v.as_bytes());
            delta.insert(&mut f.enclave, ct.as_bytes()).unwrap();
        }

        // Query [b, d]: main matches b (row 0), c (row 3); d is deleted.
        // Delta matches cc, bb.
        let range = EncryptedRange::encrypt(&f.pae, &mut f.rng, &RangeQuery::between("b", "d"));
        let combined = search_combined(
            &mut f.enclave,
            &main_dict,
            &main_av,
            &main_validity,
            &delta,
            &range,
        )
        .unwrap();
        assert_eq!(
            combined.main.iter().map(|r| r.0).collect::<Vec<_>>(),
            vec![0, 3]
        );
        assert_eq!(combined.delta.len(), 2);

        // Merge and re-query: one store, same logical content.
        let (new_dict, new_av) = merge_delta(
            &mut f.enclave,
            &main_dict,
            &main_av,
            &main_validity,
            &mut delta,
            &f.params,
            EdKind::Ed2,
        )
        .unwrap();
        assert!(delta.is_empty());
        assert_eq!(new_av.len(), 6); // 4 valid main + 2 delta
        let range = EncryptedRange::encrypt(&f.pae, &mut f.rng, &RangeQuery::between("b", "d"));
        let result = f.enclave.search(&new_dict, &range).unwrap();
        let rids = crate::avsearch::search(
            &new_av,
            &result,
            new_dict.len(),
            crate::avsearch::SetSearchStrategy::PaperLinear,
            crate::avsearch::Parallelism::Serial,
        );
        // Logical values now: b, a, c, e, cc, bb → matching: b, c, cc, bb.
        assert_eq!(rids.len(), 4);
    }

    #[test]
    fn merge_rerandomizes_ciphertexts() {
        let mut f = fixture(5);
        let sk_d = derive_column_key(&f.skdb, "t", "c");
        let col = Column::from_strs("c", 12, ["x", "y"]).unwrap();
        let (main_dict, main_av) =
            build_encrypted(&col, EdKind::Ed9, &f.params, &sk_d, &mut f.rng).unwrap();
        let old_cts: Vec<Vec<u8>> = (0..main_dict.len())
            .map(|i| main_dict.ciphertext(i).to_vec())
            .collect();
        let validity = ValidityVector::all_valid(2);
        let mut delta = EncryptedDeltaStore::new("t", "c", 12);
        let ct = encrypt_value_for_column(&f.pae, &mut f.rng, b"z");
        delta.insert(&mut f.enclave, ct.as_bytes()).unwrap();
        let (new_dict, _) = merge_delta(
            &mut f.enclave,
            &main_dict,
            &main_av,
            &validity,
            &mut delta,
            &f.params,
            EdKind::Ed9,
        )
        .unwrap();
        for i in 0..new_dict.len() {
            assert!(
                !old_cts.iter().any(|old| old == new_dict.ciphertext(i)),
                "ciphertext {i} links old and new store"
            );
        }
    }

    #[test]
    fn empty_delta_merge_is_a_noop() {
        // Satellite regression: merging an empty delta over a fully valid
        // main store must not rebuild (re-encrypt) anything — no ECALL, no
        // untrusted loads, zero values decrypted, identical bytes out.
        let mut f = fixture(6);
        let sk_d = derive_column_key(&f.skdb, "t", "c");
        let col = Column::from_strs("c", 12, ["x", "y", "z"]).unwrap();
        let (main_dict, main_av) =
            build_encrypted(&col, EdKind::Ed2, &f.params, &sk_d, &mut f.rng).unwrap();
        let validity = ValidityVector::all_valid(3);
        let mut delta = EncryptedDeltaStore::new("t", "c", 12);
        f.enclave.enclave_mut().reset_counters();
        let (new_dict, new_av) = merge_delta(
            &mut f.enclave,
            &main_dict,
            &main_av,
            &validity,
            &mut delta,
            &f.params,
            EdKind::Ed2,
        )
        .unwrap();
        let counters = f.enclave.enclave().counters();
        assert_eq!(counters.ecalls, 0, "no-op merge must not enter the enclave");
        assert_eq!(counters.untrusted_loads, 0, "zero values decrypted");
        assert_eq!(new_av, main_av);
        for i in 0..main_dict.len() {
            assert_eq!(new_dict.ciphertext(i), main_dict.ciphertext(i));
        }

        // A deleted main row disqualifies the shortcut: the rebuild must
        // actually purge it.
        let mut validity = ValidityVector::all_valid(3);
        validity.invalidate(1);
        let (rebuilt, rebuilt_av) = merge_delta(
            &mut f.enclave,
            &main_dict,
            &main_av,
            &validity,
            &mut delta,
            &f.params,
            EdKind::Ed2,
        )
        .unwrap();
        assert_eq!(rebuilt_av.len(), 2);
        assert!(f.enclave.enclave().counters().ecalls > 0);
        assert_eq!(rebuilt.len(), 2);
    }

    #[test]
    fn prefix_and_drain_prefix_partition_the_delta() {
        let mut f = fixture(7);
        let mut delta = EncryptedDeltaStore::new("t", "c", 12);
        let values = ["alpha", "bravo", "charlie", "delta", "echo"];
        for v in values {
            let ct = encrypt_value_for_column(&f.pae, &mut f.rng, v.as_bytes());
            delta.insert(&mut f.enclave, ct.as_bytes()).unwrap();
        }
        delta.delete(RecordId(1));
        delta.delete(RecordId(4));

        let frozen = delta.prefix(3);
        assert_eq!(frozen.len(), 3);
        assert_eq!(frozen.valid_len(), 2); // "bravo" deleted
        for i in 0..3 {
            assert_eq!(
                frozen.ciphertext(RecordId(i as u32)),
                delta.ciphertext(RecordId(i as u32))
            );
            assert_eq!(
                frozen.is_valid(RecordId(i as u32)),
                delta.is_valid(RecordId(i as u32))
            );
        }

        // Searching the frozen prefix behaves like a store of rows 0..3.
        let range = EncryptedRange::encrypt(&f.pae, &mut f.rng, &RangeQuery::equals("charlie"));
        let rids = frozen.search(&mut f.enclave, &range).unwrap();
        assert_eq!(rids, vec![RecordId(2)]);

        // Draining the prefix leaves rows 3.. renumbered from 0.
        let suffix_cts: Vec<Vec<u8>> = (3..5)
            .map(|i| delta.ciphertext(RecordId(i)).to_vec())
            .collect();
        delta.drain_prefix(3);
        assert_eq!(delta.len(), 2);
        assert_eq!(delta.valid_len(), 1); // "echo" deleted
        assert_eq!(delta.ciphertext(RecordId(0)), &suffix_cts[0][..]);
        assert_eq!(delta.ciphertext(RecordId(1)), &suffix_cts[1][..]);
        assert!(delta.is_valid(RecordId(0)));
        assert!(!delta.is_valid(RecordId(1)));
        let range = EncryptedRange::encrypt(&f.pae, &mut f.rng, &RangeQuery::equals("delta"));
        assert_eq!(
            delta.search(&mut f.enclave, &range).unwrap(),
            vec![RecordId(0)]
        );
        delta.drain_prefix(2);
        assert!(delta.is_empty());
    }

    #[test]
    fn main_snapshot_generations_are_tagged() {
        let mut f = fixture(8);
        let sk_d = derive_column_key(&f.skdb, "t", "c");
        let col = Column::from_strs("c", 12, ["x", "y"]).unwrap();
        let (dict, av) = build_encrypted(&col, EdKind::Ed1, &f.params, &sk_d, &mut f.rng).unwrap();
        let snap = MainSnapshot::new(0, dict, av);
        assert_eq!(snap.epoch(), 0);
        let reader_view = snap.clone();
        let col2 = Column::from_strs("c", 12, ["x", "y", "z"]).unwrap();
        let (dict2, av2) =
            build_encrypted(&col2, EdKind::Ed1, &f.params, &sk_d, &mut f.rng).unwrap();
        let next = snap.next_generation(dict2, av2);
        assert_eq!(next.epoch(), 1);
        // The drained reader still sees the old generation's data.
        assert_eq!(reader_view.av().len(), 2);
        assert_eq!(next.av().len(), 3);
    }
}
