//! The trusted aggregation core: GROUP BY / aggregate / ORDER BY / LIMIT
//! evaluation over *resolved* dictionary values.
//!
//! The analytic query engine (see `encdbdb::exec`) reduces an aggregate
//! query to a **ValueID histogram**: the untrusted server scans the
//! attribute vectors of the referenced columns in chunks and counts, for
//! every distinct tuple of ValueIDs, how many matching rows carry it.
//! Aggregation then only needs each distinct value *once*, weighted by its
//! frequency — one `DecryptValue` per touched dictionary entry instead of
//! one per row.
//!
//! This module holds the pieces of that pipeline that operate on
//! *plaintext* values and therefore must run on a trusted side:
//!
//! * inside the enclave (the [`crate::enclave_ops`] `Aggregate` ECALL) when
//!   any referenced column is an encrypted dictionary, or
//! * directly on the untrusted server when every referenced column is
//!   `PLAIN` — the same code, mirroring how PlainDBDB shares the search
//!   algorithms with the enclave.
//!
//! Semantics are deliberately simple and total:
//!
//! * `SUM`/`AVG` require every aggregated value to parse as an optionally
//!   signed decimal integer (the workloads store numbers as zero-padded
//!   strings so lexicographic order matches numeric order); anything else
//!   is an [`EncdictError::Aggregate`] error.
//! * `MIN`/`MAX` compare bytewise (lexicographically), consistent with the
//!   range-query semantics of the rest of the system.
//! * `AVG` renders an exact integer when the division is exact, otherwise
//!   a sign + integer part + up to six fractional digits (truncated toward
//!   zero, trailing zeros trimmed).
//! * Aggregates over an empty input render SQL `NULL` as the empty string;
//!   `COUNT` renders `0`.
//! * Output rows are always returned in a canonical total order (explicit
//!   sort keys first, then the full row as a tiebreaker), so results are
//!   deterministic regardless of hash-map iteration order.

use crate::error::EncdictError;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// An aggregate function of the extended SQL grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — number of matching rows.
    Count,
    /// `SUM(col)` — numeric sum.
    Sum,
    /// `MIN(col)` — bytewise minimum.
    Min,
    /// `MAX(col)` — bytewise maximum.
    Max,
    /// `AVG(col)` — numeric average (exact rational rendering).
    Avg,
}

impl AggFunc {
    /// Parses a function name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("count") {
            Some(AggFunc::Count)
        } else if s.eq_ignore_ascii_case("sum") {
            Some(AggFunc::Sum)
        } else if s.eq_ignore_ascii_case("min") {
            Some(AggFunc::Min)
        } else if s.eq_ignore_ascii_case("max") {
            Some(AggFunc::Max)
        } else if s.eq_ignore_ascii_case("avg") {
            Some(AggFunc::Avg)
        } else {
            None
        }
    }

    /// How results of this function compare in ORDER BY.
    pub fn value_kind(self) -> ValueKind {
        match self {
            AggFunc::Count | AggFunc::Sum | AggFunc::Avg => ValueKind::Numeric,
            AggFunc::Min | AggFunc::Max => ValueKind::Bytes,
        }
    }
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        })
    }
}

/// How an output column compares in ORDER BY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Bytewise (lexicographic) comparison — group keys, MIN/MAX.
    Bytes,
    /// Numeric comparison of canonical decimal renderings — COUNT/SUM/AVG.
    Numeric,
}

/// One aggregate in an execution plan; `col` indexes the plan's referenced
/// column list (`None` only for `COUNT(*)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Index of the aggregated column in the referenced-column list.
    pub col: Option<usize>,
}

/// One output item of an aggregate plan, in SELECT-list order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputItem {
    /// The i-th GROUP BY column.
    Group(usize),
    /// The j-th aggregate of the plan.
    Agg(usize),
}

/// One ORDER BY key over the output items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortSpec {
    /// Index into the output items.
    pub item: usize,
    /// Descending order if set.
    pub desc: bool,
}

/// The value-level part of an aggregate plan: which referenced columns are
/// group keys, which aggregates to compute, how to lay out, sort and limit
/// the output. Column indices refer to the accompanying value tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggPlanSpec {
    /// Referenced-column indices forming the GROUP BY key, in order.
    pub group_cols: Vec<usize>,
    /// Aggregates to compute.
    pub aggregates: Vec<AggSpec>,
    /// Output items in SELECT-list order.
    pub items: Vec<OutputItem>,
    /// ORDER BY keys (may be empty — output is still canonically ordered).
    pub sort: Vec<SortSpec>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

impl AggPlanSpec {
    /// The comparison kind of output item `i`.
    pub fn item_kind(&self, i: usize) -> ValueKind {
        match self.items[i] {
            OutputItem::Group(_) => ValueKind::Bytes,
            OutputItem::Agg(j) => self.aggregates[j].func.value_kind(),
        }
    }
}

/// Parses an optionally signed decimal integer (leading zeros allowed).
///
/// Returns `None` for empty input, stray characters, or overflow — the
/// caller turns that into an [`EncdictError::Aggregate`] error for
/// SUM/AVG.
pub fn parse_number(bytes: &[u8]) -> Option<i128> {
    let (neg, digits) = match bytes.split_first() {
        Some((b'-', rest)) => (true, rest),
        _ => (false, bytes),
    };
    if digits.is_empty() || !digits.iter().all(u8::is_ascii_digit) {
        return None;
    }
    let mut v: i128 = 0;
    for &d in digits {
        v = v.checked_mul(10)?.checked_add((d - b'0') as i128)?;
    }
    Some(if neg { -v } else { v })
}

/// Compares two canonical decimal renderings numerically.
///
/// Accepts the strings this module itself produces (optional sign, integer
/// digits, optional `.` + fraction). The empty string (SQL NULL) sorts
/// below every number. Non-canonical input falls back to bytewise order so
/// the comparison stays total.
pub fn numeric_cmp(a: &[u8], b: &[u8]) -> Ordering {
    fn split(x: &[u8]) -> Option<(bool, &[u8], &[u8])> {
        let (neg, rest) = match x.split_first() {
            Some((b'-', rest)) => (true, rest),
            _ => (false, x),
        };
        let (int, frac) = match rest.iter().position(|&c| c == b'.') {
            Some(p) => (&rest[..p], &rest[p + 1..]),
            None => (rest, &rest[rest.len()..]),
        };
        if int.is_empty() || !int.iter().all(u8::is_ascii_digit) {
            return None;
        }
        if !frac.iter().all(u8::is_ascii_digit) {
            return None;
        }
        Some((neg, int, frac))
    }
    fn magnitude_cmp(a: (&[u8], &[u8]), b: (&[u8], &[u8])) -> Ordering {
        let strip = |s: &[u8]| {
            let mut i = 0;
            while i + 1 < s.len() && s[i] == b'0' {
                i += 1;
            }
            i
        };
        let (ai, bi) = (&a.0[strip(a.0)..], &b.0[strip(b.0)..]);
        match ai.len().cmp(&bi.len()).then_with(|| ai.cmp(bi)) {
            Ordering::Equal => {}
            other => return other,
        }
        // Integer parts equal: compare fractions digit by digit, missing
        // digits count as zero.
        let n = a.1.len().max(b.1.len());
        for i in 0..n {
            let da = a.1.get(i).copied().unwrap_or(b'0');
            let db = b.1.get(i).copied().unwrap_or(b'0');
            match da.cmp(&db) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return Ordering::Equal,
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        (false, false) => {}
    }
    match (split(a), split(b)) {
        (Some((an, ai, af)), Some((bn, bi, bf))) => {
            let a_zero = ai.iter().all(|&c| c == b'0') && af.iter().all(|&c| c == b'0');
            let b_zero = bi.iter().all(|&c| c == b'0') && bf.iter().all(|&c| c == b'0');
            let an = an && !a_zero;
            let bn = bn && !b_zero;
            match (an, bn) {
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => magnitude_cmp((ai, af), (bi, bf)),
                (true, true) => magnitude_cmp((bi, bf), (ai, af)),
            }
        }
        _ => a.cmp(b),
    }
}

/// Compares two values under the given kind.
pub fn compare_values(kind: ValueKind, a: &[u8], b: &[u8]) -> Ordering {
    match kind {
        ValueKind::Bytes => a.cmp(b),
        ValueKind::Numeric => numeric_cmp(a, b),
    }
}

/// Renders `sum / count` exactly: an integer when the division is exact,
/// otherwise sign + integer part + up to six fractional digits (truncated
/// toward zero, trailing zeros trimmed).
pub fn render_avg(sum: i128, count: u64) -> Vec<u8> {
    debug_assert!(count > 0);
    let count = count as i128;
    if sum % count == 0 {
        return (sum / count).to_string().into_bytes();
    }
    let neg = sum < 0;
    let m = sum.unsigned_abs();
    let q = m / count.unsigned_abs();
    let r = m % count.unsigned_abs();
    let frac = r * 1_000_000 / count.unsigned_abs();
    let mut out = String::new();
    if neg {
        out.push('-');
    }
    out.push_str(&q.to_string());
    if frac > 0 {
        let digits = format!("{frac:06}");
        out.push('.');
        out.push_str(digits.trim_end_matches('0'));
    }
    out.into_bytes()
}

/// Running state of the aggregates of one group.
#[derive(Debug, Clone, Default)]
struct AggAccumulator {
    count: u64,
    sum: Option<i128>,
    saw_non_numeric: bool,
    min: Option<Vec<u8>>,
    max: Option<Vec<u8>>,
}

impl AggAccumulator {
    /// Folds another partial accumulator of the same (group, aggregate)
    /// into this one — the per-group half of the partition merge. All five
    /// functions are decomposable: COUNT/SUM add, MIN/MAX combine, AVG
    /// carries (sum, count).
    fn merge(&mut self, other: &AggAccumulator) {
        self.saw_non_numeric |= other.saw_non_numeric;
        // `sum: None` means "no numeric value folded yet" while the count
        // is zero, and "overflowed" otherwise — an empty side must not
        // clobber the other side's running sum.
        self.sum = match (self.count, other.count) {
            (0, _) => other.sum,
            (_, 0) => self.sum,
            _ => match (self.sum, other.sum) {
                (Some(a), Some(b)) => a.checked_add(b),
                _ => None,
            },
        };
        self.count += other.count;
        if let Some(m) = &other.min {
            if self.min.as_deref().is_none_or(|s| m.as_slice() < s) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self.max.as_deref().is_none_or(|s| m.as_slice() > s) {
                self.max = Some(m.clone());
            }
        }
    }

    fn feed(&mut self, value: Option<&[u8]>, freq: u64) {
        self.count += freq;
        let Some(v) = value else { return };
        match parse_number(v) {
            Some(n) => {
                let add = n.checked_mul(freq as i128);
                self.sum = match (self.sum, add) {
                    (prev, Some(a)) => prev.or(Some(0)).and_then(|s| s.checked_add(a)),
                    _ => None,
                };
                if self.sum.is_none() {
                    self.saw_non_numeric = true;
                }
            }
            None => self.saw_non_numeric = true,
        }
        if self.min.as_deref().is_none_or(|m| v < m) {
            self.min = Some(v.to_vec());
        }
        if self.max.as_deref().is_none_or(|m| v > m) {
            self.max = Some(v.to_vec());
        }
    }

    fn finish(&self, func: AggFunc) -> Result<Vec<u8>, EncdictError> {
        Ok(match func {
            AggFunc::Count => self.count.to_string().into_bytes(),
            AggFunc::Sum | AggFunc::Avg if self.count == 0 => Vec::new(),
            AggFunc::Sum | AggFunc::Avg => {
                let sum =
                    self.sum
                        .filter(|_| !self.saw_non_numeric)
                        .ok_or(EncdictError::Aggregate(
                            "SUM/AVG over a non-numeric or overflowing value",
                        ))?;
                if func == AggFunc::Sum {
                    sum.to_string().into_bytes()
                } else {
                    render_avg(sum, self.count)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or_default(),
            AggFunc::Max => self.max.clone().unwrap_or_default(),
        })
    }
}

/// Partial aggregation state: per-group accumulators keyed by the
/// plaintext group key.
///
/// This is the unit the *partition-parallel* executor merges in the
/// trusted core: each range partition of a table reduces its matching
/// rows to a ValueID histogram over its own dictionaries, every
/// partition's histogram is [`accumulated`](GroupPartials::accumulate)
/// into partials on the trusted side (the enclave when any referenced
/// column is encrypted, the local plain path otherwise), partials
/// [`merge`](GroupPartials::merge) by group key — all five aggregate
/// functions are decomposable (COUNT/SUM add, MIN/MAX combine, AVG
/// carries `(sum, count)`) — and a single [`finalize`](GroupPartials::finalize)
/// renders, sorts and limits the output rows.
#[derive(Debug, Clone, Default)]
pub struct GroupPartials {
    // BTreeMap keeps the grouping deterministic.
    groups: BTreeMap<Vec<Vec<u8>>, Vec<AggAccumulator>>,
}

impl GroupPartials {
    /// Empty partial state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct groups accumulated so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Folds one partition's histogram into the partial state.
    ///
    /// `tables[c]` holds the distinct touched values of referenced column
    /// `c` *in that partition*; `tuples` is the partition's histogram with
    /// per-column indices into the tables plus the row frequency.
    ///
    /// # Errors
    ///
    /// Returns [`EncdictError::CorruptDictionary`] when a tuple index is
    /// out of range.
    pub fn accumulate(
        &mut self,
        tables: &[Vec<Vec<u8>>],
        tuples: &[(Vec<u32>, u64)],
        plan: &AggPlanSpec,
    ) -> Result<(), EncdictError> {
        let resolve = |c: usize, idx: &[u32]| -> Result<&[u8], EncdictError> {
            let i = *idx
                .get(c)
                .ok_or(EncdictError::CorruptDictionary("tuple arity mismatch"))?
                as usize;
            tables
                .get(c)
                .and_then(|t| t.get(i))
                .map(Vec::as_slice)
                .ok_or(EncdictError::CorruptDictionary(
                    "tuple index outside value table",
                ))
        };
        for (idxs, freq) in tuples {
            let mut key = Vec::with_capacity(plan.group_cols.len());
            for &c in &plan.group_cols {
                key.push(resolve(c, idxs)?.to_vec());
            }
            let accs = self
                .groups
                .entry(key)
                .or_insert_with(|| vec![AggAccumulator::default(); plan.aggregates.len()]);
            for (spec, acc) in plan.aggregates.iter().zip(accs.iter_mut()) {
                let value = match spec.col {
                    Some(c) => Some(resolve(c, idxs)?),
                    None => None,
                };
                acc.feed(value, *freq);
            }
        }
        Ok(())
    }

    /// Merges another partial state into this one, group by group.
    pub fn merge(&mut self, other: GroupPartials) {
        for (key, accs) in other.groups {
            match self.groups.entry(key) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(accs);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    for (mine, theirs) in slot.get_mut().iter_mut().zip(&accs) {
                        mine.merge(theirs);
                    }
                }
            }
        }
    }

    /// Renders the merged groups as output rows (one cell per plan item)
    /// in final order, sorted and limited.
    ///
    /// # Errors
    ///
    /// Returns [`EncdictError::Aggregate`] when SUM/AVG met a value that
    /// is not an optionally signed decimal integer (or overflowed).
    pub fn finalize(mut self, plan: &AggPlanSpec) -> Result<Vec<Vec<Vec<u8>>>, EncdictError> {
        // SQL semantics: an aggregate without GROUP BY always returns one
        // row, even over an empty input.
        if self.groups.is_empty() && plan.group_cols.is_empty() {
            self.groups.insert(
                Vec::new(),
                vec![AggAccumulator::default(); plan.aggregates.len()],
            );
        }
        let mut rows = Vec::with_capacity(self.groups.len());
        for (key, accs) in &self.groups {
            let mut row = Vec::with_capacity(plan.items.len());
            for item in &plan.items {
                row.push(match *item {
                    OutputItem::Group(i) => key[i].clone(),
                    OutputItem::Agg(j) => accs[j].finish(plan.aggregates[j].func)?,
                });
            }
            rows.push(row);
        }
        sort_rows(&mut rows, plan);
        if let Some(n) = plan.limit {
            rows.truncate(n);
        }
        Ok(rows)
    }
}

/// Evaluates an aggregate plan over resolved value tables — the
/// single-partition convenience over [`GroupPartials`]
/// (accumulate once, finalize).
///
/// # Errors
///
/// Returns [`EncdictError::Aggregate`] when SUM/AVG meets a value that is
/// not an optionally signed decimal integer, and
/// [`EncdictError::CorruptDictionary`] when a tuple index is out of range.
pub fn evaluate(
    tables: &[Vec<Vec<u8>>],
    tuples: &[(Vec<u32>, u64)],
    plan: &AggPlanSpec,
) -> Result<Vec<Vec<Vec<u8>>>, EncdictError> {
    let mut partials = GroupPartials::new();
    partials.accumulate(tables, tuples, plan)?;
    partials.finalize(plan)
}

/// Sorts output rows: explicit sort keys first, then the full row ascending
/// as a tiebreaker, making the order total and deterministic.
pub fn sort_rows(rows: &mut [Vec<Vec<u8>>], plan: &AggPlanSpec) {
    rows.sort_by(|a, b| {
        for key in &plan.sort {
            let ord = compare_values(plan.item_kind(key.item), &a[key.item], &b[key.item]);
            let ord = if key.desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        for i in 0..a.len() {
            let ord = compare_values(plan.item_kind(i), &a[i], &b[i]);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    #[test]
    fn parse_number_shapes() {
        assert_eq!(parse_number(b"0"), Some(0));
        assert_eq!(parse_number(b"007"), Some(7));
        assert_eq!(parse_number(b"-42"), Some(-42));
        assert_eq!(parse_number(b""), None);
        assert_eq!(parse_number(b"-"), None);
        assert_eq!(parse_number(b"1.5"), None);
        assert_eq!(parse_number(b"12a"), None);
    }

    #[test]
    fn numeric_cmp_orders_canonical_decimals() {
        let cases = [
            ("2", "10", Ordering::Less),
            ("010", "10", Ordering::Equal),
            ("-3", "2", Ordering::Less),
            ("-10", "-2", Ordering::Less),
            ("1.5", "1.25", Ordering::Greater),
            ("1.5", "1.50", Ordering::Equal),
            ("-0", "0", Ordering::Equal),
            ("", "0", Ordering::Less),
            ("3", "3.000001", Ordering::Less),
        ];
        for (a, b, expected) in cases {
            assert_eq!(
                numeric_cmp(a.as_bytes(), b.as_bytes()),
                expected,
                "{a} vs {b}"
            );
            assert_eq!(
                numeric_cmp(b.as_bytes(), a.as_bytes()),
                expected.reverse(),
                "{b} vs {a}"
            );
        }
    }

    #[test]
    fn avg_rendering_is_exact_or_truncated() {
        assert_eq!(render_avg(10, 2), b"5".to_vec());
        assert_eq!(render_avg(-10, 2), b"-5".to_vec());
        assert_eq!(render_avg(10, 4), b"2.5".to_vec());
        assert_eq!(render_avg(10, 3), b"3.333333".to_vec());
        assert_eq!(render_avg(-10, 3), b"-3.333333".to_vec());
        assert_eq!(render_avg(1, 3_000_000), b"0".to_vec());
        assert_eq!(render_avg(0, 5), b"0".to_vec());
    }

    fn plan(
        group_cols: Vec<usize>,
        aggregates: Vec<AggSpec>,
        items: Vec<OutputItem>,
        sort: Vec<SortSpec>,
        limit: Option<usize>,
    ) -> AggPlanSpec {
        AggPlanSpec {
            group_cols,
            aggregates,
            items,
            sort,
            limit,
        }
    }

    #[test]
    fn grouped_sum_with_order_and_limit() {
        // Column 0: group key; column 1: values.
        let tables = vec![
            vec![bytes("emea"), bytes("apj"), bytes("amer")],
            vec![bytes("010"), bytes("005"), bytes("020")],
        ];
        // (emea, 10)x2, (apj, 5)x1, (amer, 20)x3, (apj, 20)x1
        let tuples = vec![
            (vec![0, 0], 2),
            (vec![1, 1], 1),
            (vec![2, 2], 3),
            (vec![1, 2], 1),
        ];
        let p = plan(
            vec![0],
            vec![AggSpec {
                func: AggFunc::Sum,
                col: Some(1),
            }],
            vec![OutputItem::Group(0), OutputItem::Agg(0)],
            vec![SortSpec {
                item: 1,
                desc: true,
            }],
            Some(2),
        );
        let rows = evaluate(&tables, &tuples, &p).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![bytes("amer"), bytes("60")],
                vec![bytes("apj"), bytes("25")],
            ]
        );
    }

    #[test]
    fn all_aggregates_over_one_group() {
        let tables = vec![vec![bytes("3"), bytes("-1"), bytes("10")]];
        let tuples = vec![(vec![0], 2), (vec![1], 1), (vec![2], 1)];
        let p = plan(
            vec![],
            vec![
                AggSpec {
                    func: AggFunc::Count,
                    col: None,
                },
                AggSpec {
                    func: AggFunc::Sum,
                    col: Some(0),
                },
                AggSpec {
                    func: AggFunc::Min,
                    col: Some(0),
                },
                AggSpec {
                    func: AggFunc::Max,
                    col: Some(0),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    col: Some(0),
                },
            ],
            (0..5).map(OutputItem::Agg).collect(),
            vec![],
            None,
        );
        let rows = evaluate(&tables, &tuples, &p).unwrap();
        // count 4, sum 3+3-1+10 = 15, min "-1", max "3" (bytewise!), avg 3.75
        assert_eq!(
            rows,
            vec![vec![
                bytes("4"),
                bytes("15"),
                bytes("-1"),
                bytes("3"),
                bytes("3.75"),
            ]]
        );
    }

    #[test]
    fn empty_input_yields_null_row_without_group_and_no_rows_with_group() {
        let tables: Vec<Vec<Vec<u8>>> = vec![vec![]];
        let p = plan(
            vec![],
            vec![
                AggSpec {
                    func: AggFunc::Count,
                    col: None,
                },
                AggSpec {
                    func: AggFunc::Sum,
                    col: Some(0),
                },
            ],
            vec![OutputItem::Agg(0), OutputItem::Agg(1)],
            vec![],
            None,
        );
        let rows = evaluate(&tables, &[], &p).unwrap();
        assert_eq!(rows, vec![vec![bytes("0"), Vec::new()]]);

        let p = plan(
            vec![0],
            vec![AggSpec {
                func: AggFunc::Count,
                col: None,
            }],
            vec![OutputItem::Group(0), OutputItem::Agg(0)],
            vec![],
            None,
        );
        assert!(evaluate(&tables, &[], &p).unwrap().is_empty());
    }

    #[test]
    fn non_numeric_sum_errors_min_max_do_not() {
        let tables = vec![vec![bytes("abc")]];
        let tuples = vec![(vec![0], 1)];
        let sum = plan(
            vec![],
            vec![AggSpec {
                func: AggFunc::Sum,
                col: Some(0),
            }],
            vec![OutputItem::Agg(0)],
            vec![],
            None,
        );
        assert!(matches!(
            evaluate(&tables, &tuples, &sum),
            Err(EncdictError::Aggregate(_))
        ));
        let minmax = plan(
            vec![],
            vec![
                AggSpec {
                    func: AggFunc::Min,
                    col: Some(0),
                },
                AggSpec {
                    func: AggFunc::Max,
                    col: Some(0),
                },
            ],
            vec![OutputItem::Agg(0), OutputItem::Agg(1)],
            vec![],
            None,
        );
        assert_eq!(
            evaluate(&tables, &tuples, &minmax).unwrap(),
            vec![vec![bytes("abc"), bytes("abc")]]
        );
    }

    #[test]
    fn canonical_order_without_explicit_sort() {
        let tables = vec![vec![bytes("b"), bytes("a")]];
        let tuples = vec![(vec![0], 1), (vec![1], 1)];
        let p = plan(vec![0], vec![], vec![OutputItem::Group(0)], vec![], None);
        let rows = evaluate(&tables, &tuples, &p).unwrap();
        assert_eq!(rows, vec![vec![bytes("a")], vec![bytes("b")]]);
    }

    #[test]
    fn partial_merge_matches_single_pass() {
        // Split one histogram across three "partitions" (each with its own
        // value tables); accumulating per part and merging must match the
        // single-pass evaluation over the concatenated data.
        let p = plan(
            vec![0],
            vec![
                AggSpec {
                    func: AggFunc::Count,
                    col: None,
                },
                AggSpec {
                    func: AggFunc::Sum,
                    col: Some(1),
                },
                AggSpec {
                    func: AggFunc::Min,
                    col: Some(1),
                },
                AggSpec {
                    func: AggFunc::Max,
                    col: Some(1),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    col: Some(1),
                },
            ],
            vec![
                OutputItem::Group(0),
                OutputItem::Agg(0),
                OutputItem::Agg(1),
                OutputItem::Agg(2),
                OutputItem::Agg(3),
                OutputItem::Agg(4),
            ],
            vec![SortSpec {
                item: 1,
                desc: true,
            }],
            None,
        );
        // Partition value tables deliberately disagree on indices: the
        // same plaintext group lands at different table slots per part.
        type Part = (Vec<Vec<Vec<u8>>>, Vec<(Vec<u32>, u64)>);
        let parts: Vec<Part> = vec![
            (
                vec![vec![bytes("a"), bytes("b")], vec![bytes("10"), bytes("3")]],
                vec![(vec![0, 0], 2), (vec![1, 1], 1)],
            ),
            (
                vec![vec![bytes("b"), bytes("a")], vec![bytes("5")]],
                vec![(vec![0, 0], 4), (vec![1, 0], 1)],
            ),
            (vec![vec![], vec![]], vec![]),
        ];
        let mut merged = GroupPartials::new();
        for (tables, tuples) in &parts {
            let mut partial = GroupPartials::new();
            partial.accumulate(tables, tuples, &p).unwrap();
            merged.merge(partial);
        }
        assert_eq!(merged.group_count(), 2);
        let rows = merged.finalize(&p).unwrap();
        // a: count 3, sum 2*10 + 5 = 25, min "10", max "5" (bytewise), avg 25/3
        // b: count 5, sum 3 + 4*5 = 23, min "3", max "5", avg 23/5
        // Sorted by COUNT descending: b (5) before a (3).
        assert_eq!(
            rows,
            vec![
                vec![
                    bytes("b"),
                    bytes("5"),
                    bytes("23"),
                    bytes("3"),
                    bytes("5"),
                    bytes("4.6"),
                ],
                vec![
                    bytes("a"),
                    bytes("3"),
                    bytes("25"),
                    bytes("10"),
                    bytes("5"),
                    bytes("8.333333"),
                ],
            ]
        );
    }

    #[test]
    fn partial_merge_empty_sides_and_null_row() {
        let p = plan(
            vec![],
            vec![
                AggSpec {
                    func: AggFunc::Count,
                    col: None,
                },
                AggSpec {
                    func: AggFunc::Sum,
                    col: Some(0),
                },
            ],
            vec![OutputItem::Agg(0), OutputItem::Agg(1)],
            vec![],
            None,
        );
        // Merging an empty partial into a fed one must not lose the sum.
        let mut fed = GroupPartials::new();
        fed.accumulate(&[vec![bytes("7")]], &[(vec![0], 2)], &p)
            .unwrap();
        fed.merge(GroupPartials::new());
        let mut other_way = GroupPartials::new();
        other_way.merge(fed.clone());
        assert_eq!(
            other_way.finalize(&p).unwrap(),
            vec![vec![bytes("2"), bytes("14")]]
        );
        // All-empty partials still produce the NULL row for a global
        // aggregate.
        assert_eq!(
            GroupPartials::new().finalize(&p).unwrap(),
            vec![vec![bytes("0"), Vec::new()]]
        );
    }

    #[test]
    fn agg_func_parse_and_display() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            assert_eq!(AggFunc::parse(&f.to_string()), Some(f));
            assert_eq!(AggFunc::parse(&f.to_string().to_lowercase()), Some(f));
        }
        assert_eq!(AggFunc::parse("median"), None);
    }
}
