//! Owned, thread-portable forms of the batched ECALL requests.
//!
//! The borrow-based request types in [`crate::enclave_ops`] reference the
//! caller's stack and snapshot data, which works for the direct (bypass)
//! path where the session thread itself holds the enclave lock. Cross-
//! session batching is different: a session hands its request to whichever
//! thread happens to lead the next combined transition, so the request must
//! own (or share via [`Arc`]) everything it references — the workspace
//! forbids `unsafe`, so there is no borrowed flat-combining shortcut.
//!
//! [`OwnedDictCall::borrow`] lowers an owned request back into the exact
//! borrow-based [`DictCall`] the bypass path issues, which is what makes
//! the batched and direct paths bit-identical by construction.

use crate::aggregate::AggPlanSpec;
use crate::dict::EncryptedDictionary;
use crate::enclave_ops::{
    AggColumnData, AggPartitionData, AggregateRequest, CacheTag, DictCall, JoinBridgeRequest,
    JoinKeyData, JoinSideData, SearchRequest, SegmentRef,
};
use crate::range::EncryptedRange;
use std::sync::Arc;

/// An owned handle to one encrypted dictionary segment.
///
/// `Shared` keeps a published main-store generation alive through its
/// [`Arc`] (no copy); `Owned` carries a materialized store — e.g. the ED9
/// view of a frozen delta, whose bytes are small and already cloned per
/// search today.
#[derive(Debug, Clone)]
pub enum SegSource {
    /// A published, refcounted store generation.
    Shared(Arc<EncryptedDictionary>),
    /// A materialized private copy (delta stores). Boxed so the handle
    /// stays pointer-sized inside the owned-call envelopes.
    Owned(Box<EncryptedDictionary>),
}

impl SegSource {
    /// The dictionary this source resolves to.
    pub fn dict(&self) -> &EncryptedDictionary {
        match self {
            SegSource::Shared(d) => d,
            SegSource::Owned(d) => d,
        }
    }
}

/// An owned copy of one head/tail segment (delta stores in aggregate and
/// join requests, which reference raw segments rather than full
/// dictionaries).
#[derive(Debug, Clone, Default)]
pub struct OwnedSegment {
    /// Fixed-width head entries.
    pub head: Vec<u8>,
    /// Variable-width ciphertext tail.
    pub tail: Vec<u8>,
    /// Number of entries.
    pub len: usize,
}

impl OwnedSegment {
    /// Borrows this segment as the wire-form [`SegmentRef`].
    pub fn segment_ref(&self) -> SegmentRef<'_> {
        SegmentRef {
            head: enclave_sim::UntrustedMemory::new(&self.head),
            tail: enclave_sim::UntrustedMemory::new(&self.tail),
            len: self.len,
        }
    }
}

/// An owned [`SearchRequest`]: a dictionary handle plus the encrypted
/// disjunction.
#[derive(Debug)]
pub struct OwnedSearchCall {
    /// The dictionary to search (main-store Arc or materialized delta).
    pub dict: SegSource,
    /// The encrypted range filters τ, one per range of the disjunction.
    pub ranges: Vec<EncryptedRange>,
    /// Value-cache generation tag, as in [`SearchRequest::cache`].
    pub cache: Option<CacheTag>,
}

/// An owned [`AggColumnData`].
#[derive(Debug)]
pub enum OwnedAggColumn {
    /// An encrypted column's main + delta segments and touched codes.
    Encrypted {
        /// Main-store dictionary handle.
        main: SegSource,
        /// Delta-store segment copy (ED9 layout).
        delta: OwnedSegment,
        /// Distinct touched codes, ascending.
        codes: Vec<u32>,
        /// `(partition discriminator, snapshot epoch)` cache tag.
        cache: Option<(u64, u64)>,
    },
    /// A PLAIN column's distinct touched values.
    Plain {
        /// Distinct touched values.
        values: Vec<Vec<u8>>,
    },
}

/// An owned [`AggPartitionData`].
#[derive(Debug)]
pub struct OwnedAggPartition {
    /// The referenced columns, in tuple order.
    pub columns: Vec<OwnedAggColumn>,
    /// The partition's ValueID-tuple histogram.
    pub tuples: Vec<(Vec<u32>, u64)>,
}

/// An owned [`AggregateRequest`].
#[derive(Debug)]
pub struct OwnedAggregateCall {
    /// Table name (key-derivation metadata).
    pub table_name: String,
    /// Per referenced column: `Some(name)` if encrypted, `None` for PLAIN.
    pub col_names: Vec<Option<String>>,
    /// One entry per scanned non-empty partition.
    pub parts: Vec<OwnedAggPartition>,
    /// Group/aggregate/sort/limit specification.
    pub plan: AggPlanSpec,
}

/// An owned [`JoinKeyData`].
#[derive(Debug)]
pub enum OwnedJoinKey {
    /// An encrypted key column's segments and distinct codes.
    Encrypted {
        /// Main-store dictionary handle.
        main: SegSource,
        /// Delta-store segment copy (ED9 layout).
        delta: OwnedSegment,
        /// Distinct touched codes, ascending.
        codes: Vec<u32>,
        /// `(partition discriminator, snapshot epoch)` cache tag.
        cache: Option<(u64, u64)>,
    },
    /// A PLAIN key column's distinct touched values.
    Plain {
        /// Distinct touched values.
        values: Vec<Vec<u8>>,
    },
}

/// An owned [`JoinSideData`].
#[derive(Debug)]
pub struct OwnedJoinSide {
    /// Table name (key-derivation metadata).
    pub table_name: String,
    /// `Some(column)` if the key column is encrypted, `None` for PLAIN.
    pub col_name: Option<String>,
    /// One entry per scanned non-empty partition.
    pub parts: Vec<OwnedJoinKey>,
}

/// An owned [`JoinBridgeRequest`].
#[derive(Debug)]
pub struct OwnedJoinBridgeCall {
    /// The build side.
    pub left: OwnedJoinSide,
    /// The probe side.
    pub right: OwnedJoinSide,
}

/// An owned dictionary-enclave call — the unit a session submits to the
/// cross-session ECALL scheduler. Only the read-path calls are batchable:
/// re-encryption and merge stay on their dedicated paths.
#[derive(Debug)]
pub enum OwnedDictCall {
    /// A dictionary search (main or materialized delta store).
    Search(OwnedSearchCall),
    /// A grouped aggregation.
    Aggregate(OwnedAggregateCall),
    /// An equi-join key bridge.
    JoinBridge(OwnedJoinBridgeCall),
}

impl OwnedDictCall {
    /// Lowers this owned request into the borrow-based wire form — the
    /// exact [`DictCall`] the direct (bypass) path issues.
    pub fn borrow(&self) -> DictCall<'_> {
        match self {
            OwnedDictCall::Search(s) => DictCall::Search(SearchRequest::for_dictionary_multi(
                s.dict.dict(),
                &s.ranges,
                s.cache,
            )),
            OwnedDictCall::Aggregate(a) => DictCall::Aggregate(AggregateRequest {
                table_name: &a.table_name,
                col_names: a.col_names.iter().map(|n| n.as_deref()).collect(),
                parts: a
                    .parts
                    .iter()
                    .map(|p| AggPartitionData {
                        columns: p.columns.iter().map(borrow_agg_column).collect(),
                        tuples: &p.tuples,
                    })
                    .collect(),
                plan: &a.plan,
            }),
            OwnedDictCall::JoinBridge(j) => DictCall::JoinBridge(JoinBridgeRequest {
                left: borrow_join_side(&j.left),
                right: borrow_join_side(&j.right),
            }),
        }
    }
}

fn borrow_agg_column(col: &OwnedAggColumn) -> AggColumnData<'_> {
    match col {
        OwnedAggColumn::Encrypted {
            main,
            delta,
            codes,
            cache,
        } => AggColumnData::Encrypted {
            main: main.dict().segment_ref(),
            delta: delta.segment_ref(),
            codes,
            cache: *cache,
        },
        OwnedAggColumn::Plain { values } => AggColumnData::Plain { values },
    }
}

fn borrow_join_side(side: &OwnedJoinSide) -> JoinSideData<'_> {
    JoinSideData {
        table_name: &side.table_name,
        col_name: side.col_name.as_deref(),
        parts: side
            .parts
            .iter()
            .map(|k| match k {
                OwnedJoinKey::Encrypted {
                    main,
                    delta,
                    codes,
                    cache,
                } => JoinKeyData::Encrypted {
                    main: main.dict().segment_ref(),
                    delta: delta.segment_ref(),
                    codes,
                    cache: *cache,
                },
                OwnedJoinKey::Plain { values } => JoinKeyData::Plain { values },
            })
            .collect(),
    }
}
