//! Fixed-width 256-bit unsigned integers.
//!
//! The paper's enclave links a C++ big-integer library for the special
//! binary search of ED2/ED5/ED8 (§6.1). We replace it with a minimal
//! fixed-width type: `ENCODE` maps values of up to 31 bytes into a 256-bit
//! integer, and the only arithmetic the search needs is comparison and
//! subtraction modulo the domain size — no division, no heap.

/// A 256-bit unsigned integer, four little-endian 64-bit limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct U256 {
    limbs: [u64; 4],
}

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// One.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };
    /// The maximum representable value.
    pub const MAX: U256 = U256 {
        limbs: [u64::MAX; 4],
    };

    /// Constructs from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256 { limbs }
    }

    /// Constructs from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Constructs from big-endian bytes (at most 32).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 32`.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "U256 from more than 32 bytes");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let hi = 32 - 8 * (i + 1);
            *limb = u64::from_be_bytes(buf[hi..hi + 8].try_into().unwrap());
        }
        U256 { limbs }
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.limbs.iter().enumerate() {
            let hi = 32 - 8 * (i + 1);
            out[hi..hi + 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Wrapping addition (mod 2^256).
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (out, (a, b)) in out.iter_mut().zip(self.limbs.iter().zip(rhs.limbs.iter())) {
            let (s1, c1) = a.overflowing_add(*b);
            let (s2, c2) = s1.overflowing_add(carry);
            *out = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        U256 { limbs: out }
    }

    /// Wrapping subtraction (mod 2^256).
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for (out, (a, b)) in out.iter_mut().zip(self.limbs.iter().zip(rhs.limbs.iter())) {
            let (d1, b1) = a.overflowing_sub(*b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *out = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        U256 { limbs: out }
    }

    /// Checked subtraction: `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        if self >= rhs {
            Some(self.wrapping_sub(rhs))
        } else {
            None
        }
    }

    /// `(self - rhs) mod n`, assuming `self < n` and `rhs < n`.
    ///
    /// This is the only modular operation Algorithm 3 needs; since both
    /// operands are already reduced, no division is required.
    ///
    /// # Panics
    ///
    /// Debug-panics if an operand is not reduced modulo `n` (a programming
    /// error in the caller).
    pub fn sub_mod(self, rhs: U256, n: U256) -> U256 {
        debug_assert!(self < n && rhs < n, "sub_mod operands must be reduced");
        if self >= rhs {
            self.wrapping_sub(rhs)
        } else {
            n.wrapping_sub(rhs).wrapping_add(self)
        }
    }

    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.limbs == [0; 4]
    }
}

impl std::ops::Shl<u32> for U256 {
    type Output = U256;

    /// Shifts left by `k` bits, filling with zeros; `k >= 256` yields zero.
    fn shl(self, k: u32) -> U256 {
        if k == 0 {
            return self;
        }
        if k >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (k / 64) as usize;
        let bit_shift = k % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            let mut v = self.limbs[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        U256 { limbs: out }
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl std::fmt::Display for U256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "0x{:016x}{:016x}{:016x}{:016x}",
            self.limbs[3], self.limbs[2], self.limbs[1], self.limbs[0]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_be_bytes(&[1, 2, 3, 4]);
        assert_eq!(v, U256::from_u64(0x01020304));
        let bytes = v.to_be_bytes();
        assert_eq!(U256::from_be_bytes(&bytes), v);
    }

    #[test]
    fn ordering_matches_byte_order() {
        let a = U256::from_be_bytes(b"aaaa");
        let b = U256::from_be_bytes(b"aaab");
        assert!(a < b);
        assert!(U256::ZERO < U256::ONE);
        assert!(U256::ONE < U256::MAX);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U256::from_limbs([u64::MAX, 5, 0, 1]);
        let b = U256::from_limbs([7, u64::MAX, 3, 0]);
        let s = a.wrapping_add(b);
        assert_eq!(s.wrapping_sub(b), a);
        assert_eq!(s.wrapping_sub(a), b);
    }

    #[test]
    fn wrapping_behaviour() {
        assert_eq!(U256::MAX.wrapping_add(U256::ONE), U256::ZERO);
        assert_eq!(U256::ZERO.wrapping_sub(U256::ONE), U256::MAX);
    }

    #[test]
    fn carry_propagates_across_limbs() {
        let a = U256::from_limbs([u64::MAX, u64::MAX, 0, 0]);
        let s = a.wrapping_add(U256::ONE);
        assert_eq!(s, U256::from_limbs([0, 0, 1, 0]));
    }

    #[test]
    fn checked_sub() {
        let a = U256::from_u64(10);
        let b = U256::from_u64(20);
        assert_eq!(b.checked_sub(a), Some(U256::from_u64(10)));
        assert_eq!(a.checked_sub(b), None);
    }

    #[test]
    fn sub_mod_reference() {
        let n = U256::from_u64(100);
        assert_eq!(
            U256::from_u64(30).sub_mod(U256::from_u64(10), n),
            U256::from_u64(20)
        );
        // (10 - 30) mod 100 = 80
        assert_eq!(
            U256::from_u64(10).sub_mod(U256::from_u64(30), n),
            U256::from_u64(80)
        );
        // (x - x) mod n = 0
        assert_eq!(
            U256::from_u64(42).sub_mod(U256::from_u64(42), n),
            U256::ZERO
        );
    }

    #[test]
    fn shl_matches_u128_for_small_values() {
        let v = U256::from_u64(0xdead_beef);
        for k in [0u32, 1, 7, 63, 64, 65, 128, 190] {
            let got = v << k;
            if k <= 64 {
                let expect = (0xdead_beefu128) << k;
                assert_eq!(
                    got,
                    U256::from_limbs([expect as u64, (expect >> 64) as u64, 0, 0]),
                    "shift {k}"
                );
            }
        }
        assert_eq!(v << 256, U256::ZERO);
    }

    #[test]
    fn display_is_hex() {
        assert!(U256::from_u64(255).to_string().ends_with("ff"));
    }
}
