//! Frequency-smoothing bucket experiment (paper Algorithm 5).
//!
//! For each unique value `v` with `|oc(C, v)|` occurrences, the random
//! experiment draws bucket sizes uniformly from `[1, bs_max]` until the
//! running total covers the occurrence count, then shrinks the last bucket
//! so the total matches exactly. The value is inserted into the dictionary
//! once per bucket, bounding the frequency of any single ValueID in the
//! attribute vector by `bs_max` — this is the *Uniform Random Salt
//! Frequencies* method the paper builds on.

use crate::error::EncdictError;
use rand::Rng;

/// Draws random bucket sizes for a value occurring `occurrences` times,
/// bounded by `bs_max` (Algorithm 5: `getRndBucketSizes`).
///
/// The returned sizes are each in `[1, bs_max]` and sum to `occurrences`.
///
/// # Errors
///
/// Returns [`EncdictError::InvalidBucketSize`] if `bs_max == 0`.
///
/// # Panics
///
/// Panics if `occurrences == 0` — every unique value occurs at least once.
pub fn rnd_bucket_sizes<R: Rng + ?Sized>(
    rng: &mut R,
    occurrences: usize,
    bs_max: usize,
) -> Result<Vec<usize>, EncdictError> {
    if bs_max == 0 {
        return Err(EncdictError::InvalidBucketSize);
    }
    assert!(
        occurrences > 0,
        "a value in the column occurs at least once"
    );
    let mut sizes = Vec::new();
    let mut prev_total = 0usize;
    let mut total = 0usize;
    while total < occurrences {
        let rnd = rng.gen_range(1..=bs_max);
        sizes.push(rnd);
        prev_total = total;
        total += rnd;
    }
    // Shrink the last bucket so the total matches |oc(C, v)| exactly.
    let last = sizes.len() - 1;
    sizes[last] = occurrences - prev_total;
    Ok(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sizes_sum_to_occurrences() {
        let mut rng = StdRng::seed_from_u64(1);
        for occurrences in [1usize, 2, 5, 17, 100, 1000] {
            for bs_max in [1usize, 2, 10, 100] {
                let sizes = rnd_bucket_sizes(&mut rng, occurrences, bs_max).unwrap();
                assert_eq!(sizes.iter().sum::<usize>(), occurrences);
                assert!(sizes.iter().all(|&s| s >= 1 && s <= bs_max));
            }
        }
    }

    #[test]
    fn bs_max_one_degenerates_to_frequency_hiding() {
        let mut rng = StdRng::seed_from_u64(2);
        let sizes = rnd_bucket_sizes(&mut rng, 7, 1).unwrap();
        assert_eq!(sizes, vec![1; 7]);
    }

    #[test]
    fn large_bs_max_often_single_bucket() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut single = 0;
        for _ in 0..100 {
            if rnd_bucket_sizes(&mut rng, 3, 1000).unwrap().len() == 1 {
                single += 1;
            }
        }
        // With bs_max = 1000 and 3 occurrences, the first draw covers the
        // whole count with probability 998/1000.
        assert!(single > 90, "got {single}");
    }

    #[test]
    fn zero_bs_max_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            rnd_bucket_sizes(&mut rng, 5, 0),
            Err(EncdictError::InvalidBucketSize)
        );
    }

    #[test]
    fn expected_bucket_count_matches_table3_formula() {
        // Table 3: expected |D| contribution of a value is roughly
        // 2·|oc| / (1 + bs_max) buckets (each bucket averages (1+bs_max)/2).
        let mut rng = StdRng::seed_from_u64(5);
        let occurrences = 10_000;
        let bs_max = 10;
        let trials = 200;
        let total: usize = (0..trials)
            .map(|_| {
                rnd_bucket_sizes(&mut rng, occurrences, bs_max)
                    .unwrap()
                    .len()
            })
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = 2.0 * occurrences as f64 / (1.0 + bs_max as f64);
        let ratio = mean / expected;
        assert!(
            (0.9..1.1).contains(&ratio),
            "mean {mean} vs expected {expected}"
        );
    }
}
