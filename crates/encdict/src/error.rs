//! Error types for the encrypted-dictionary crate.

use encdbdb_crypto::CryptoError;
use std::error::Error;
use std::fmt;

/// Errors produced by encrypted-dictionary operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncdictError {
    /// A value exceeded the column's fixed maximal length.
    ValueTooLong {
        /// Length of the offending value.
        got: usize,
        /// The column's fixed maximal length.
        max: usize,
    },
    /// The column's fixed maximal length is too large for the ENCODE domain.
    MaxLenTooLarge {
        /// The requested maximum length.
        got: usize,
        /// The largest supported maximum length.
        max: usize,
    },
    /// bs_max must be at least 1 for frequency smoothing.
    InvalidBucketSize,
    /// A dictionary byte layout was malformed (head/tail mismatch).
    CorruptDictionary(&'static str),
    /// The enclave has no provisioned master key.
    KeyNotProvisioned,
    /// An aggregate could not be evaluated (e.g. SUM over a value that is
    /// not a decimal integer).
    Aggregate(&'static str),
    /// An underlying cryptographic operation failed (bad key, tampering).
    Crypto(CryptoError),
    /// A shared batch round died before this request was dispatched: the
    /// round leader panicked mid-transition, so the request was never
    /// executed. The caller should fail the query (the enclave state
    /// itself is unaffected — the request simply never ran).
    Poisoned(&'static str),
}

impl fmt::Display for EncdictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncdictError::ValueTooLong { got, max } => {
                write!(f, "value of {got} bytes exceeds column maximum of {max}")
            }
            EncdictError::MaxLenTooLarge { got, max } => {
                write!(f, "column maximum {got} exceeds encodable maximum {max}")
            }
            EncdictError::InvalidBucketSize => write!(f, "bs_max must be at least 1"),
            EncdictError::CorruptDictionary(what) => {
                write!(f, "corrupt encrypted dictionary: {what}")
            }
            EncdictError::KeyNotProvisioned => {
                write!(f, "enclave master key not provisioned")
            }
            EncdictError::Aggregate(what) => write!(f, "aggregate failure: {what}"),
            EncdictError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
            EncdictError::Poisoned(what) => write!(f, "poisoned batch round: {what}"),
        }
    }
}

impl Error for EncdictError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EncdictError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for EncdictError {
    fn from(e: CryptoError) -> Self {
        EncdictError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EncdictError::from(CryptoError::TagMismatch);
        assert!(e.to_string().contains("cryptographic"));
        assert!(e.source().is_some());
        assert!(EncdictError::InvalidBucketSize.source().is_none());
    }
}
