//! Attribute-vector search (`AttrVectSearch`), executed in the untrusted
//! realm.
//!
//! After the enclave returns the matching ValueIDs, the attribute vector is
//! scanned linearly for them (paper §2.1/§4.1). Two result shapes exist:
//!
//! * sorted/rotated kinds return up to two contiguous ValueID *ranges* —
//!   the scan does one or two integer comparisons per row;
//! * unsorted kinds return an explicit ValueID *list* — the paper compares
//!   "every v ∈ AV with every u ∈ vid", an `O(|AV| · |vid|)` scan
//!   ([`SetSearchStrategy::PaperLinear`]); we additionally provide a bitmap
//!   strategy ([`SetSearchStrategy::Bitmap`]) as an engineering extension,
//!   quantified in the ablation benchmarks.
//!
//! The paper notes the scan "is parallelizable with a speedup expected to
//! be linear in the number of threads"; pass `Parallelism::Threads(n)` to
//! use std scoped threads over row chunks.

use crate::search::{DictSearchResult, VidRange};
use colstore::dictionary::{AttributeVector, RecordId};

/// How the attribute-vector scan is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded scan.
    Serial,
    /// Scan with this many worker threads (clamped to at least 1).
    Threads(usize),
}

/// Membership-test strategy for explicit ValueID lists (unsorted kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetSearchStrategy {
    /// The paper's strategy: compare each attribute-vector entry against
    /// each returned ValueID (`O(|AV| · |vid|)`, early exit on match).
    PaperLinear,
    /// Engineering extension: precompute a `|D|`-bit bitmap of matching
    /// ValueIDs, then scan with O(1) membership tests.
    Bitmap,
}

fn scan_chunks<F>(av: &AttributeVector, parallelism: Parallelism, matcher: F) -> Vec<RecordId>
where
    F: Fn(u32) -> bool + Sync,
{
    let ids = av.as_slice();
    let threads = match parallelism {
        Parallelism::Serial => 1,
        Parallelism::Threads(n) => n.max(1),
    };
    if threads == 1 || ids.len() < 4096 {
        return ids
            .iter()
            .enumerate()
            .filter(|(_, &id)| matcher(id))
            .map(|(j, _)| RecordId(j as u32))
            .collect();
    }
    let chunk_len = ids.len().div_ceil(threads);
    let partials: Vec<Vec<RecordId>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk_len)
            .enumerate()
            .map(|(c, chunk)| {
                let matcher = &matcher;
                scope.spawn(move || {
                    let base = (c * chunk_len) as u32;
                    chunk
                        .iter()
                        .enumerate()
                        .filter(|(_, &id)| matcher(id))
                        .map(|(j, _)| RecordId(base + j as u32))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("attribute-vector scan worker panicked"))
            .collect()
    });
    partials.concat()
}

/// `AttrVectSearch 1/2/4/5/7/8`: returns the RecordIDs whose ValueID falls
/// into any of the returned ranges.
pub fn search_ranges(
    av: &AttributeVector,
    ranges: &[Option<VidRange>; 2],
    parallelism: Parallelism,
) -> Vec<RecordId> {
    match (ranges[0], ranges[1]) {
        (None, None) => Vec::new(),
        (Some(r), None) | (None, Some(r)) => scan_chunks(av, parallelism, |id| r.contains(id)),
        (Some(r1), Some(r2)) => {
            scan_chunks(av, parallelism, |id| r1.contains(id) || r2.contains(id))
        }
    }
}

/// `AttrVectSearch 3/6/9`: returns the RecordIDs whose ValueID appears in
/// the explicit `vids` list.
pub fn search_ids(
    av: &AttributeVector,
    vids: &[u32],
    dict_len: usize,
    strategy: SetSearchStrategy,
    parallelism: Parallelism,
) -> Vec<RecordId> {
    if vids.is_empty() {
        return Vec::new();
    }
    match strategy {
        SetSearchStrategy::PaperLinear => scan_chunks(av, parallelism, |id| vids.contains(&id)),
        SetSearchStrategy::Bitmap => {
            let mut bitmap = vec![0u64; dict_len.div_ceil(64)];
            for &u in vids {
                bitmap[(u / 64) as usize] |= 1 << (u % 64);
            }
            scan_chunks(av, parallelism, |id| {
                bitmap[(id / 64) as usize] & (1 << (id % 64)) != 0
            })
        }
    }
}

/// Dispatches on the dictionary-search result shape.
pub fn search(
    av: &AttributeVector,
    result: &DictSearchResult,
    dict_len: usize,
    strategy: SetSearchStrategy,
    parallelism: Parallelism,
) -> Vec<RecordId> {
    match result {
        DictSearchResult::Ranges(ranges) => search_ranges(av, ranges, parallelism),
        DictSearchResult::Ids(vids) => search_ids(av, vids, dict_len, strategy, parallelism),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::dictionary::ValueId;

    fn av(ids: &[u32]) -> AttributeVector {
        ids.iter().map(|&i| ValueId(i)).collect()
    }

    fn rids(v: &[RecordId]) -> Vec<u32> {
        v.iter().map(|r| r.0).collect()
    }

    #[test]
    fn single_range_scan() {
        // Figure 1: vid = {0, 2} over AV (1,0,2,2,1,1)... here as a range.
        let a = av(&[1, 0, 2, 2, 1, 1]);
        let got = search_ranges(&a, &[VidRange::new(1, 2), None], Parallelism::Serial);
        assert_eq!(rids(&got), vec![0, 2, 3, 4, 5]);
    }

    #[test]
    fn two_range_scan_covers_wrap() {
        let a = av(&[0, 1, 2, 3, 4, 5]);
        let got = search_ranges(
            &a,
            &[VidRange::new(0, 1), VidRange::new(4, 5)],
            Parallelism::Serial,
        );
        assert_eq!(rids(&got), vec![0, 1, 4, 5]);
    }

    #[test]
    fn empty_ranges_match_nothing() {
        let a = av(&[0, 1, 2]);
        assert!(search_ranges(&a, &[None, None], Parallelism::Serial).is_empty());
    }

    #[test]
    fn id_list_strategies_agree() {
        let a = av(&[5, 3, 9, 3, 7, 5, 0]);
        let vids = vec![3, 7];
        let linear = search_ids(
            &a,
            &vids,
            10,
            SetSearchStrategy::PaperLinear,
            Parallelism::Serial,
        );
        let bitmap = search_ids(
            &a,
            &vids,
            10,
            SetSearchStrategy::Bitmap,
            Parallelism::Serial,
        );
        assert_eq!(rids(&linear), vec![1, 3, 4]);
        assert_eq!(linear, bitmap);
    }

    #[test]
    fn empty_vid_list() {
        let a = av(&[0, 1]);
        assert!(search_ids(
            &a,
            &[],
            2,
            SetSearchStrategy::PaperLinear,
            Parallelism::Serial
        )
        .is_empty());
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let ids: Vec<u32> = (0..100_000).map(|i| i % 97).collect();
        let a = av(&ids);
        let serial = search_ranges(&a, &[VidRange::new(10, 20), None], Parallelism::Serial);
        for threads in [2usize, 4, 7] {
            let parallel = search_ranges(
                &a,
                &[VidRange::new(10, 20), None],
                Parallelism::Threads(threads),
            );
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // RecordIDs must come back in ascending order.
        assert!(serial.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn parallel_id_list_matches_serial() {
        let ids: Vec<u32> = (0..50_000).map(|i| (i * 31) % 1000).collect();
        let a = av(&ids);
        let vids: Vec<u32> = (0..50).map(|i| i * 13 % 1000).collect();
        let serial = search_ids(
            &a,
            &vids,
            1000,
            SetSearchStrategy::Bitmap,
            Parallelism::Serial,
        );
        let parallel = search_ids(
            &a,
            &vids,
            1000,
            SetSearchStrategy::Bitmap,
            Parallelism::Threads(4),
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn dispatch_handles_both_shapes() {
        let a = av(&[0, 1, 2, 1]);
        let from_ranges = search(
            &a,
            &DictSearchResult::Ranges([VidRange::new(1, 1), None]),
            3,
            SetSearchStrategy::PaperLinear,
            Parallelism::Serial,
        );
        let from_ids = search(
            &a,
            &DictSearchResult::Ids(vec![1]),
            3,
            SetSearchStrategy::PaperLinear,
            Parallelism::Serial,
        );
        assert_eq!(from_ranges, from_ids);
        assert_eq!(rids(&from_ranges), vec![1, 3]);
    }
}
