//! Attribute-vector search (`AttrVectSearch`), executed in the untrusted
//! realm.
//!
//! After the enclave returns the matching ValueIDs, the attribute vector is
//! scanned linearly for them (paper §2.1/§4.1). Two result shapes exist:
//!
//! * sorted/rotated kinds return up to two contiguous ValueID *ranges* —
//!   the scan does one or two integer comparisons per row;
//! * unsorted kinds return an explicit ValueID *list* — the paper compares
//!   "every v ∈ AV with every u ∈ vid", an `O(|AV| · |vid|)` scan
//!   ([`SetSearchStrategy::PaperLinear`]); we additionally provide a bitmap
//!   strategy ([`SetSearchStrategy::Bitmap`]) as an engineering extension,
//!   quantified in the ablation benchmarks.
//!
//! The paper notes the scan "is parallelizable with a speedup expected to
//! be linear in the number of threads"; pass `Parallelism::Threads(n)` to
//! use std scoped threads over row chunks.
//!
//! # Kernel shape (DESIGN.md §14)
//!
//! The predicate is dispatched *once per scan*, not once per row: each
//! shape (single range, double range, k-range disjunction, id list,
//! bitmap) becomes a 0/1 mask closure monomorphized into its own scan
//! loop. Range and id-list scans use *branch-free compaction* — the
//! candidate RecordID is written unconditionally and the output cursor
//! advances by the mask, leaving no data-dependent branch to predict —
//! while the bitmap probe, which already pays a memory load per row and
//! targets sparse id sets, keeps the classic store-on-match filter
//! (`compact_chunk`). Chunks are compacted into a reusable per-worker
//! scratch buffer (`SCAN_CHUNK_ROWS` rows) instead of allocating per
//! query. The pre-existing scalar loops are kept verbatim in the
//! [`mod@reference`] module for differential tests and A/B benchmarks.

use crate::search::{DictSearchResult, VidRange};
use colstore::dictionary::{AttributeVector, RecordId};
use std::cell::RefCell;

/// How the attribute-vector scan is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded scan.
    Serial,
    /// Scan with this many worker threads (clamped to at least 1).
    Threads(usize),
}

/// Membership-test strategy for explicit ValueID lists (unsorted kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetSearchStrategy {
    /// The paper's strategy: compare each attribute-vector entry against
    /// each returned ValueID (`O(|AV| · |vid|)`, early exit on match).
    PaperLinear,
    /// Engineering extension: precompute a `|D|`-bit bitmap of matching
    /// ValueIDs, then scan with O(1) membership tests.
    Bitmap,
}

/// Rows per compaction chunk; also the minimum row count for threading.
const SCAN_CHUNK_ROWS: usize = 4096;

thread_local! {
    /// Per-worker compaction scratch: candidate RecordIDs of one chunk.
    /// Reused across chunks and across queries on the same worker thread.
    static SCAN_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread ValueID bitmap, reused across queries (zeroed, not
    /// reallocated, when the dictionary size allows).
    static BITMAP_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A scan predicate; [`scan_pred`] lowers each shape to a 0/1 mask
/// closure monomorphized into its own scan loop.
enum Pred<'a> {
    /// ValueID in any of these inclusive ranges (sorted/rotated replies;
    /// more than two entries under batched disjunctions).
    Ranges(&'a [VidRange]),
    /// ValueID in this explicit list (the paper's linear membership test).
    IdList(&'a [u32]),
    /// ValueID's bit set in this `|D|`-bit map.
    Bitmap(&'a [u64]),
}

/// `lo <= id <= hi` as a single unsigned compare after rebasing:
/// `id - lo <= hi - lo` (wrapping keeps ids below `lo` out — they rebase
/// to huge values).
#[inline(always)]
fn in_range(id: u32, r: VidRange) -> u32 {
    (id.wrapping_sub(r.lo) <= r.hi.wrapping_sub(r.lo)) as u32
}

/// Compacts one chunk's matching positions into `buf`, returning how many
/// matched. `mask` is monomorphized per predicate shape (see
/// [`scan_pred`]) — an enum dispatch or dynamic-length range walk per row
/// would defeat the compiler's ability to keep the loop body a fixed
/// compare chain.
///
/// Two inner-loop styles, chosen statically per predicate:
///
/// * `BRANCHY = false` — branch-free: write each candidate position
///   unconditionally and advance the cursor by the 0/1 mask. Immune to
///   branch misprediction, so it wins for cheap ALU predicates (range
///   compares) and for predicates whose per-row cost dwarfs the store
///   (linear id-list membership).
/// * `BRANCHY = true` — classic filter: store only on match. The
///   unconditional store is pure overhead when matches are rare and the
///   predicate already pays a memory load per row, as the bitmap probe
///   does; the match branch predicts almost perfectly at low selectivity.
#[inline]
fn compact_chunk<const BRANCHY: bool, F: Fn(u32) -> u32>(
    chunk: &[u32],
    base: u32,
    mask: &F,
    buf: &mut [u32],
) -> usize {
    let mut n = 0usize;
    for (j, &id) in chunk.iter().enumerate() {
        if BRANCHY {
            if mask(id) != 0 {
                buf[n] = base + j as u32;
                n += 1;
            }
        } else {
            buf[n] = base + j as u32;
            n += mask(id) as usize;
        }
    }
    n
}

/// Scans `ids` (record positions `base..base + ids.len()`) chunk by chunk
/// through this thread's scratch buffer.
fn scan_span<const BRANCHY: bool, F: Fn(u32) -> u32>(
    ids: &[u32],
    base: u32,
    mask: &F,
    out: &mut Vec<RecordId>,
) {
    SCAN_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < SCAN_CHUNK_ROWS {
            buf.resize(SCAN_CHUNK_ROWS, 0);
        }
        for (c, chunk) in ids.chunks(SCAN_CHUNK_ROWS).enumerate() {
            let chunk_base = base + (c * SCAN_CHUNK_ROWS) as u32;
            let n = compact_chunk::<BRANCHY, F>(chunk, chunk_base, mask, &mut buf);
            out.extend(buf[..n].iter().map(|&p| RecordId(p)));
        }
    });
}

fn scan_mask<const BRANCHY: bool, F>(
    av: &AttributeVector,
    parallelism: Parallelism,
    mask: F,
) -> Vec<RecordId>
where
    F: Fn(u32) -> u32 + Sync,
{
    let ids = av.as_slice();
    let threads = match parallelism {
        Parallelism::Serial => 1,
        Parallelism::Threads(n) => n.max(1),
    };
    if threads == 1 || ids.len() < SCAN_CHUNK_ROWS {
        let mut out = Vec::new();
        scan_span::<BRANCHY, F>(ids, 0, &mask, &mut out);
        return out;
    }
    let chunk_len = ids.len().div_ceil(threads);
    let partials: Vec<Vec<RecordId>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk_len)
            .enumerate()
            .map(|(c, chunk)| {
                let mask = &mask;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    scan_span::<BRANCHY, F>(chunk, (c * chunk_len) as u32, mask, &mut out);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("attribute-vector scan worker panicked"))
            .collect()
    });
    partials.concat()
}

/// Dispatches one predicate to a monomorphized [`scan_mask`] instance:
/// the common arities (one range, two ranges) get fixed compare chains,
/// longer disjunctions fall back to a per-row range walk.
fn scan_pred(av: &AttributeVector, parallelism: Parallelism, pred: Pred<'_>) -> Vec<RecordId> {
    match pred {
        Pred::Ranges(ranges) => match *ranges {
            [] => Vec::new(),
            [r] => scan_mask::<false, _>(av, parallelism, move |id| in_range(id, r)),
            [r1, r2] => scan_mask::<false, _>(av, parallelism, move |id| {
                in_range(id, r1) | in_range(id, r2)
            }),
            _ => scan_mask::<false, _>(av, parallelism, move |id| {
                ranges.iter().fold(0u32, |m, &r| m | in_range(id, r))
            }),
        },
        Pred::IdList(vids) => {
            scan_mask::<false, _>(av, parallelism, move |id| vids.contains(&id) as u32)
        }
        // Branchy: the probe already costs a load per row and bitmap
        // strategies are picked for sparse id sets, where the match
        // branch predicts almost perfectly.
        Pred::Bitmap(bitmap) => scan_mask::<true, _>(av, parallelism, move |id| {
            let word = bitmap.get((id / 64) as usize).copied().unwrap_or(0);
            (word >> (id % 64)) as u32 & 1
        }),
    }
}

/// `AttrVectSearch 1/2/4/5/7/8`: returns the RecordIDs whose ValueID falls
/// into any of the returned ranges.
pub fn search_ranges(
    av: &AttributeVector,
    ranges: &[Option<VidRange>; 2],
    parallelism: Parallelism,
) -> Vec<RecordId> {
    let mut rs = [VidRange { lo: 0, hi: 0 }; 2];
    let mut n = 0usize;
    for r in ranges.iter().flatten() {
        rs[n] = *r;
        n += 1;
    }
    if n == 0 {
        return Vec::new();
    }
    scan_pred(av, parallelism, Pred::Ranges(&rs[..n]))
}

/// `AttrVectSearch 3/6/9`: returns the RecordIDs whose ValueID appears in
/// the explicit `vids` list.
pub fn search_ids(
    av: &AttributeVector,
    vids: &[u32],
    dict_len: usize,
    strategy: SetSearchStrategy,
    parallelism: Parallelism,
) -> Vec<RecordId> {
    if vids.is_empty() {
        return Vec::new();
    }
    match strategy {
        SetSearchStrategy::PaperLinear => scan_pred(av, parallelism, Pred::IdList(vids)),
        SetSearchStrategy::Bitmap => BITMAP_SCRATCH.with(|cell| {
            let mut bitmap = cell.borrow_mut();
            bitmap.clear();
            bitmap.resize(dict_len.div_ceil(64), 0);
            for &u in vids {
                bitmap[(u / 64) as usize] |= 1 << (u % 64);
            }
            scan_pred(av, parallelism, Pred::Bitmap(&bitmap))
        }),
    }
}

/// Dispatches on the dictionary-search result shape.
pub fn search(
    av: &AttributeVector,
    result: &DictSearchResult,
    dict_len: usize,
    strategy: SetSearchStrategy,
    parallelism: Parallelism,
) -> Vec<RecordId> {
    match result {
        DictSearchResult::Ranges(ranges) => search_ranges(av, ranges, parallelism),
        DictSearchResult::Ids(vids) => search_ids(av, vids, dict_len, strategy, parallelism),
    }
}

/// Unions a batched disjunction's per-range results in **one** pass over
/// the attribute vector: all ranges (or all id lists) are folded into a
/// single mask predicate, so a k-range `IN (...)` costs one scan instead
/// of k scans plus k−1 sorted merges. RecordIDs come back ascending and
/// deduplicated (a row matching several ranges is emitted once).
pub fn search_union(
    av: &AttributeVector,
    results: &[DictSearchResult],
    dict_len: usize,
    strategy: SetSearchStrategy,
    parallelism: Parallelism,
) -> Vec<RecordId> {
    if results.len() == 1 {
        return search(av, &results[0], dict_len, strategy, parallelism);
    }
    let mut ranges: Vec<VidRange> = Vec::new();
    let mut ids: Vec<u32> = Vec::new();
    for r in results {
        match r {
            DictSearchResult::Ranges(rs) => ranges.extend(rs.iter().flatten().copied()),
            DictSearchResult::Ids(v) => ids.extend_from_slice(v),
        }
    }
    match (ranges.is_empty(), ids.is_empty()) {
        (true, true) => Vec::new(),
        (false, true) => scan_pred(av, parallelism, Pred::Ranges(&ranges)),
        (true, false) => search_ids(av, &ids, dict_len, strategy, parallelism),
        // One dictionary answers every range of a disjunction in the same
        // shape, so mixed results cannot occur on a real reply; stay
        // correct anyway via per-result scans merged into a sorted union.
        (false, false) => {
            let mut out: Vec<RecordId> = results
                .iter()
                .flat_map(|r| search(av, r, dict_len, strategy, parallelism))
                .collect();
            out.sort_unstable_by_key(|r| r.0);
            out.dedup_by_key(|r| r.0);
            out
        }
    }
}

/// The pre-vectorization scalar scans, kept as the differential baseline:
/// `tests/` and the A/B benchmarks assert the branch-free kernels above
/// return bit-identical results.
pub mod reference {
    use super::*;

    fn scan_chunks<F>(av: &AttributeVector, parallelism: Parallelism, matcher: F) -> Vec<RecordId>
    where
        F: Fn(u32) -> bool + Sync,
    {
        let ids = av.as_slice();
        let threads = match parallelism {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        };
        if threads == 1 || ids.len() < SCAN_CHUNK_ROWS {
            return ids
                .iter()
                .enumerate()
                .filter(|(_, &id)| matcher(id))
                .map(|(j, _)| RecordId(j as u32))
                .collect();
        }
        let chunk_len = ids.len().div_ceil(threads);
        let partials: Vec<Vec<RecordId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .chunks(chunk_len)
                .enumerate()
                .map(|(c, chunk)| {
                    let matcher = &matcher;
                    scope.spawn(move || {
                        let base = (c * chunk_len) as u32;
                        chunk
                            .iter()
                            .enumerate()
                            .filter(|(_, &id)| matcher(id))
                            .map(|(j, _)| RecordId(base + j as u32))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("attribute-vector scan worker panicked"))
                .collect()
        });
        partials.concat()
    }

    /// Scalar [`super::search_ranges`].
    pub fn search_ranges_scalar(
        av: &AttributeVector,
        ranges: &[Option<VidRange>; 2],
        parallelism: Parallelism,
    ) -> Vec<RecordId> {
        match (ranges[0], ranges[1]) {
            (None, None) => Vec::new(),
            (Some(r), None) | (None, Some(r)) => scan_chunks(av, parallelism, |id| r.contains(id)),
            (Some(r1), Some(r2)) => {
                scan_chunks(av, parallelism, |id| r1.contains(id) || r2.contains(id))
            }
        }
    }

    /// Scalar [`super::search_ids`].
    pub fn search_ids_scalar(
        av: &AttributeVector,
        vids: &[u32],
        dict_len: usize,
        strategy: SetSearchStrategy,
        parallelism: Parallelism,
    ) -> Vec<RecordId> {
        if vids.is_empty() {
            return Vec::new();
        }
        match strategy {
            SetSearchStrategy::PaperLinear => scan_chunks(av, parallelism, |id| vids.contains(&id)),
            SetSearchStrategy::Bitmap => {
                let mut bitmap = vec![0u64; dict_len.div_ceil(64)];
                for &u in vids {
                    bitmap[(u / 64) as usize] |= 1 << (u % 64);
                }
                scan_chunks(av, parallelism, |id| {
                    bitmap[(id / 64) as usize] & (1 << (id % 64)) != 0
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::dictionary::ValueId;

    fn av(ids: &[u32]) -> AttributeVector {
        ids.iter().map(|&i| ValueId(i)).collect()
    }

    fn rids(v: &[RecordId]) -> Vec<u32> {
        v.iter().map(|r| r.0).collect()
    }

    #[test]
    fn single_range_scan() {
        // Figure 1: vid = {0, 2} over AV (1,0,2,2,1,1)... here as a range.
        let a = av(&[1, 0, 2, 2, 1, 1]);
        let got = search_ranges(&a, &[VidRange::new(1, 2), None], Parallelism::Serial);
        assert_eq!(rids(&got), vec![0, 2, 3, 4, 5]);
    }

    #[test]
    fn two_range_scan_covers_wrap() {
        let a = av(&[0, 1, 2, 3, 4, 5]);
        let got = search_ranges(
            &a,
            &[VidRange::new(0, 1), VidRange::new(4, 5)],
            Parallelism::Serial,
        );
        assert_eq!(rids(&got), vec![0, 1, 4, 5]);
    }

    #[test]
    fn empty_ranges_match_nothing() {
        let a = av(&[0, 1, 2]);
        assert!(search_ranges(&a, &[None, None], Parallelism::Serial).is_empty());
    }

    #[test]
    fn id_list_strategies_agree() {
        let a = av(&[5, 3, 9, 3, 7, 5, 0]);
        let vids = vec![3, 7];
        let linear = search_ids(
            &a,
            &vids,
            10,
            SetSearchStrategy::PaperLinear,
            Parallelism::Serial,
        );
        let bitmap = search_ids(
            &a,
            &vids,
            10,
            SetSearchStrategy::Bitmap,
            Parallelism::Serial,
        );
        assert_eq!(rids(&linear), vec![1, 3, 4]);
        assert_eq!(linear, bitmap);
    }

    #[test]
    fn empty_vid_list() {
        let a = av(&[0, 1]);
        assert!(search_ids(
            &a,
            &[],
            2,
            SetSearchStrategy::PaperLinear,
            Parallelism::Serial
        )
        .is_empty());
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let ids: Vec<u32> = (0..100_000).map(|i| i % 97).collect();
        let a = av(&ids);
        let serial = search_ranges(&a, &[VidRange::new(10, 20), None], Parallelism::Serial);
        for threads in [2usize, 4, 7] {
            let parallel = search_ranges(
                &a,
                &[VidRange::new(10, 20), None],
                Parallelism::Threads(threads),
            );
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // RecordIDs must come back in ascending order.
        assert!(serial.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn parallel_id_list_matches_serial() {
        let ids: Vec<u32> = (0..50_000).map(|i| (i * 31) % 1000).collect();
        let a = av(&ids);
        let vids: Vec<u32> = (0..50).map(|i| i * 13 % 1000).collect();
        let serial = search_ids(
            &a,
            &vids,
            1000,
            SetSearchStrategy::Bitmap,
            Parallelism::Serial,
        );
        let parallel = search_ids(
            &a,
            &vids,
            1000,
            SetSearchStrategy::Bitmap,
            Parallelism::Threads(4),
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn dispatch_handles_both_shapes() {
        let a = av(&[0, 1, 2, 1]);
        let from_ranges = search(
            &a,
            &DictSearchResult::Ranges([VidRange::new(1, 1), None]),
            3,
            SetSearchStrategy::PaperLinear,
            Parallelism::Serial,
        );
        let from_ids = search(
            &a,
            &DictSearchResult::Ids(vec![1]),
            3,
            SetSearchStrategy::PaperLinear,
            Parallelism::Serial,
        );
        assert_eq!(from_ranges, from_ids);
        assert_eq!(rids(&from_ranges), vec![1, 3]);
    }

    /// The branch-free kernels must be bit-identical to the scalar
    /// reference on every shape, chunk boundary, and thread count.
    #[test]
    fn vectorized_matches_scalar_reference() {
        // Sizes straddle the 4096-row chunk boundary and the threading
        // threshold; the id pattern mixes runs and jumps.
        for rows in [0usize, 1, 7, 4095, 4096, 4097, 20_000] {
            let ids: Vec<u32> = (0..rows as u32)
                .map(|i| i.wrapping_mul(2654435761) % 257)
                .collect();
            let a = av(&ids);
            for par in [Parallelism::Serial, Parallelism::Threads(3)] {
                for ranges in [
                    [VidRange::new(10, 40), None],
                    [VidRange::new(0, 0), VidRange::new(250, 256)],
                    [None, None],
                ] {
                    assert_eq!(
                        search_ranges(&a, &ranges, par),
                        reference::search_ranges_scalar(&a, &ranges, par),
                        "rows={rows} ranges={ranges:?}"
                    );
                }
                let vids: Vec<u32> = (0..40).map(|i| (i * 37) % 257).collect();
                for strat in [SetSearchStrategy::PaperLinear, SetSearchStrategy::Bitmap] {
                    assert_eq!(
                        search_ids(&a, &vids, 257, strat, par),
                        reference::search_ids_scalar(&a, &vids, 257, strat, par),
                        "rows={rows} strat={strat:?}"
                    );
                }
            }
        }
    }

    /// One combined pass over the AV must equal per-range scans unioned
    /// and deduplicated.
    #[test]
    fn union_scan_matches_per_result_union() {
        let ids: Vec<u32> = (0..30_000).map(|i| (i * 13) % 500).collect();
        let a = av(&ids);
        let results = vec![
            DictSearchResult::Ranges([VidRange::new(5, 30), None]),
            // Overlaps the first range: rows in both must dedup.
            DictSearchResult::Ranges([VidRange::new(20, 60), VidRange::new(400, 450)]),
            DictSearchResult::Ranges([None, None]),
        ];
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let combined = search_union(&a, &results, 500, SetSearchStrategy::Bitmap, par);
            let mut expected: Vec<RecordId> = results
                .iter()
                .flat_map(|r| search(&a, r, 500, SetSearchStrategy::Bitmap, par))
                .collect();
            expected.sort_unstable_by_key(|r| r.0);
            expected.dedup_by_key(|r| r.0);
            assert_eq!(combined, expected);
            assert!(combined.windows(2).all(|w| w[0].0 < w[1].0));
        }

        // Id-list shape (unsorted kinds).
        let id_results = vec![
            DictSearchResult::Ids(vec![3, 9, 100]),
            DictSearchResult::Ids(vec![9, 250]),
        ];
        for strat in [SetSearchStrategy::PaperLinear, SetSearchStrategy::Bitmap] {
            let combined = search_union(&a, &id_results, 500, strat, Parallelism::Serial);
            let mut expected: Vec<RecordId> = id_results
                .iter()
                .flat_map(|r| search(&a, r, 500, strat, Parallelism::Serial))
                .collect();
            expected.sort_unstable_by_key(|r| r.0);
            expected.dedup_by_key(|r| r.0);
            assert_eq!(combined, expected);
        }
        assert!(
            search_union(&a, &[], 500, SetSearchStrategy::Bitmap, Parallelism::Serial).is_empty()
        );
    }
}
