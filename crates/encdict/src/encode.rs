//! Order-preserving value encoding (the `ENCODE` operation of Algorithm 3).
//!
//! Algorithm 3 needs to map variable-length values of a fixed maximal
//! length into integers such that the lexicographic value order becomes the
//! integer order, and modular arithmetic on the integers is possible. The
//! paper converts each character to a fixed-width integer and right-pads to
//! the column maximum. We implement the equivalent byte-level map: a value
//! is interpreted as a base-257 number with `max_len` digits, where digit
//! values are `byte + 1` and right-padding uses digit `0`. The `+1` shift
//! keeps the encoding *strictly* order-preserving even when values contain
//! zero bytes, because a proper prefix ("ab") must sort before its
//! extension ("ab\0").
//!
//! The domain size for a column with maximal length `n` is `257^n`, which
//! fits [`U256`] for `n ≤ 31` — comfortably above the 10–12 character
//! columns of the paper's dataset.

use crate::bigint::U256;
use crate::error::EncdictError;

/// Maximum supported fixed value length for rotated dictionaries.
pub const MAX_ENCODABLE_LEN: usize = 31;

const BASE: u64 = 257;

/// Computes `257^n` as the domain size for a column maximum of `n` bytes.
///
/// # Errors
///
/// Returns [`EncdictError::MaxLenTooLarge`] if `n > 31` (the result would
/// not fit 256 bits).
pub fn domain_size(max_len: usize) -> Result<U256, EncdictError> {
    if max_len > MAX_ENCODABLE_LEN {
        return Err(EncdictError::MaxLenTooLarge {
            got: max_len,
            max: MAX_ENCODABLE_LEN,
        });
    }
    let mut acc = U256::ONE;
    for _ in 0..max_len {
        acc = mul_small(acc, BASE);
    }
    Ok(acc)
}

/// Encodes `value` order-preservingly into the domain `[0, 257^max_len)`.
///
/// # Errors
///
/// Returns [`EncdictError::ValueTooLong`] if `value` exceeds `max_len`, or
/// [`EncdictError::MaxLenTooLarge`] if `max_len > 31`.
///
/// # Example
///
/// ```
/// use encdict::encode::encode;
/// let a = encode(b"AB", 5).unwrap();
/// let b = encode(b"BA", 5).unwrap();
/// assert!(a < b); // lexicographic order preserved
/// ```
pub fn encode(value: &[u8], max_len: usize) -> Result<U256, EncdictError> {
    if max_len > MAX_ENCODABLE_LEN {
        return Err(EncdictError::MaxLenTooLarge {
            got: max_len,
            max: MAX_ENCODABLE_LEN,
        });
    }
    if value.len() > max_len {
        return Err(EncdictError::ValueTooLong {
            got: value.len(),
            max: max_len,
        });
    }
    let mut acc = U256::ZERO;
    for &b in value {
        acc = mul_small(acc, BASE);
        acc = acc.wrapping_add(U256::from_u64(b as u64 + 1));
    }
    // Right-pad with zero digits up to the fixed maximal length.
    for _ in value.len()..max_len {
        acc = mul_small(acc, BASE);
    }
    Ok(acc)
}

/// The largest encoded value in the domain: `257^max_len - 1`
/// (corresponds to `max_len` bytes of `0xFF`).
///
/// # Errors
///
/// Returns [`EncdictError::MaxLenTooLarge`] if `max_len > 31`.
pub fn encode_max(max_len: usize) -> Result<U256, EncdictError> {
    Ok(domain_size(max_len)?.wrapping_sub(U256::ONE))
}

/// Multiplies a U256 by a small constant (< 2^32), wrapping at 2^256.
fn mul_small(v: U256, k: u64) -> U256 {
    // Split into 64-bit limbs via byte representation to avoid adding a
    // general multiplier to U256.
    let be = v.to_be_bytes();
    let mut limbs = [0u64; 4];
    for (i, limb) in limbs.iter_mut().enumerate() {
        let hi = 32 - 8 * (i + 1);
        *limb = u64::from_be_bytes(be[hi..hi + 8].try_into().unwrap());
    }
    let mut out = [0u64; 4];
    let mut carry: u128 = 0;
    for i in 0..4 {
        let prod = (limbs[i] as u128) * (k as u128) + carry;
        out[i] = prod as u64;
        carry = prod >> 64;
    }
    U256::from_limbs(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_lexicographic_order() {
        let values: Vec<&[u8]> = vec![
            b"", b"A", b"AA", b"AB", b"ABB", b"AC", b"B", b"BA", b"Hans", b"Jessica", b"\xff",
        ];
        let mut sorted = values.clone();
        sorted.sort();
        let encoded: Vec<U256> = sorted.iter().map(|v| encode(v, 10).unwrap()).collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1], "encoding must be strictly increasing");
        }
    }

    #[test]
    fn prefix_sorts_before_extension_even_with_zero_bytes() {
        let a = encode(b"ab", 5).unwrap();
        let b = encode(b"ab\0", 5).unwrap();
        assert!(a < b, "\"ab\" must encode below \"ab\\0\"");
    }

    #[test]
    fn bounded_by_domain() {
        for v in [&b""[..], b"a", b"zzzz", b"\xff\xff\xff\xff"] {
            let e = encode(v, 4).unwrap();
            assert!(e < domain_size(4).unwrap());
        }
        assert_eq!(
            encode(&[0xff, 0xff, 0xff, 0xff], 4).unwrap(),
            encode_max(4).unwrap()
        );
    }

    #[test]
    fn empty_value_is_zero() {
        assert_eq!(encode(b"", 10).unwrap(), U256::ZERO);
    }

    #[test]
    fn rejects_oversized_inputs() {
        assert!(matches!(
            encode(b"toolong", 3),
            Err(EncdictError::ValueTooLong { .. })
        ));
        assert!(matches!(
            encode(b"x", 32),
            Err(EncdictError::MaxLenTooLarge { .. })
        ));
        assert!(domain_size(32).is_err());
        assert!(domain_size(31).is_ok());
    }

    #[test]
    fn domain_size_small_cases() {
        assert_eq!(domain_size(0).unwrap(), U256::ONE);
        assert_eq!(domain_size(1).unwrap(), U256::from_u64(257));
        assert_eq!(domain_size(2).unwrap(), U256::from_u64(257 * 257));
    }

    #[test]
    fn single_byte_values_map_to_shifted_digits() {
        // encode([b], 1) = b + 1.
        for b in [0u8, 1, 100, 255] {
            assert_eq!(encode(&[b], 1).unwrap(), U256::from_u64(b as u64 + 1));
        }
    }

    #[test]
    fn modular_distance_is_order_preserving_after_shift() {
        // The rotated search relies on: for a fixed reference r, the map
        // v -> (encode(v) - r) mod N is monotone on each of the two arcs.
        let n = domain_size(4).unwrap();
        let r = encode(b"mm", 4).unwrap();
        let below = encode(b"aa", 4).unwrap().sub_mod(r, n);
        let above = encode(b"zz", 4).unwrap().sub_mod(r, n);
        let at = r.sub_mod(r, n);
        assert_eq!(at, U256::ZERO);
        assert!(above < below, "values below r wrap past values above r");
    }
}
