//! Attacker-view leakage analysis (paper §6.1, Tables 3–5, Figure 6).
//!
//! An honest-but-curious server sees the encrypted dictionary `eD` and the
//! plaintext attribute vector `AV`. This module computes what such an
//! attacker can learn:
//!
//! * [`FrequencyProfile`] — the ValueID occurrence histogram of `AV`. For
//!   frequency-revealing kinds this equals the plaintext value histogram
//!   (full leakage); smoothing bounds every count by `bs_max`; hiding makes
//!   all counts exactly 1.
//! * [`order_correlation`] — how much of the plaintext order the dictionary
//!   position order reveals (1.0 for sorted, rotation-equivalent for
//!   rotated, ~0 for unsorted).
//!
//! These functions back the empirical security experiments behind Table 5 /
//! Figure 6 (the `table5_security` bench binary).

use colstore::dictionary::AttributeVector;
use std::collections::HashMap;

/// Histogram of ValueID occurrence counts — what the attacker reads off a
/// plaintext attribute vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyProfile {
    counts: HashMap<u32, usize>,
}

impl FrequencyProfile {
    /// Computes the profile of an attribute vector.
    pub fn of(av: &AttributeVector) -> Self {
        let mut counts = HashMap::new();
        for &id in av.as_slice() {
            *counts.entry(id).or_insert(0usize) += 1;
        }
        FrequencyProfile { counts }
    }

    /// The highest occurrence count of any single ValueID — the attacker's
    /// best frequency signal. `bs_max` for smoothing kinds, 1 for hiding.
    pub fn max_count(&self) -> usize {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct ValueIDs used.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The multiset of counts, sorted descending — the "shape" available to
    /// a frequency-analysis attack (e.g. Naveed et al.).
    pub fn histogram(&self) -> Vec<usize> {
        let mut h: Vec<usize> = self.counts.values().copied().collect();
        h.sort_unstable_by(|a, b| b.cmp(a));
        h
    }

    /// Whether every ValueID occurs exactly once (frequency hiding).
    pub fn is_flat(&self) -> bool {
        self.counts.values().all(|&c| c == 1)
    }
}

/// Fraction of adjacent dictionary pairs whose plaintext order matches
/// their position order: 1.0 means the attacker can read the full order off
/// dictionary positions; ~0.5 is what a random arrangement yields.
///
/// `plaintexts` must be the dictionary entries in position order — this is
/// *analysis* tooling run by the evaluator who knows the plaintexts, not
/// something the attacker can compute.
pub fn order_correlation(plaintexts: &[Vec<u8>]) -> f64 {
    if plaintexts.len() < 2 {
        return 1.0;
    }
    let ordered = plaintexts.windows(2).filter(|w| w[0] <= w[1]).count();
    ordered as f64 / (plaintexts.len() - 1) as f64
}

/// Like [`order_correlation`] but maximized over all rotations: a rotated
/// dictionary scores ~1.0 here while scoring < 1.0 on the plain metric,
/// showing that only the *modular* order leaks (MOPE-equivalent security).
pub fn modular_order_correlation(plaintexts: &[Vec<u8>]) -> f64 {
    let n = plaintexts.len();
    if n < 2 {
        return 1.0;
    }
    // A rotation of a sorted sequence has exactly one *cyclic* descent (at
    // the rotation point), i.e. n - 1 ordered cyclic pairs — the same count
    // a fully sorted sequence has. Normalizing by n - 1 therefore scores
    // both 1.0, while a random permutation scores ~0.5.
    let ordered = (0..n)
        .filter(|&i| plaintexts[i] <= plaintexts[(i + 1) % n])
        .count();
    (ordered as f64 / (n - 1) as f64).min(1.0)
}

/// Summary of what one encrypted dictionary leaks, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageReport {
    /// Max ValueID frequency observed in the attribute vector.
    pub max_frequency: usize,
    /// Positional order correlation of dictionary plaintexts.
    pub order_corr: f64,
    /// Rotation-tolerant order correlation.
    pub modular_order_corr: f64,
}

/// Computes a leakage report from the attacker-visible attribute vector and
/// the (evaluator-known) dictionary plaintexts in position order.
pub fn analyze(av: &AttributeVector, dict_plaintexts: &[Vec<u8>]) -> LeakageReport {
    LeakageReport {
        max_frequency: FrequencyProfile::of(av).max_count(),
        order_corr: order_correlation(dict_plaintexts),
        modular_order_corr: modular_order_correlation(dict_plaintexts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_plain, BuildParams};
    use crate::kind::EdKind;
    use colstore::column::Column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed_column() -> Column {
        // 20 uniques, value i occurring i+1 times: a clearly non-uniform
        // histogram an attacker could exploit under full leakage.
        let values: Vec<String> = (0..20u32)
            .flat_map(|i| std::iter::repeat_n(format!("val{i:03}"), i as usize + 1))
            .collect();
        Column::from_strs("c", 8, values.iter()).unwrap()
    }

    fn dict_plaintexts(dict: &crate::dict::PlainDictionary) -> Vec<Vec<u8>> {
        (0..dict.len()).map(|i| dict.value(i).to_vec()).collect()
    }

    #[test]
    fn revealing_kinds_leak_exact_frequencies() {
        let col = skewed_column();
        let mut rng = StdRng::seed_from_u64(1);
        let (_, av) = build_plain(&col, EdKind::Ed1, &BuildParams::default(), &mut rng).unwrap();
        let profile = FrequencyProfile::of(&av);
        // The attacker sees the exact plaintext histogram 20, 19, ..., 1.
        assert_eq!(profile.histogram(), (1..=20usize).rev().collect::<Vec<_>>());
        assert_eq!(profile.max_count(), 20);
    }

    #[test]
    fn smoothing_bounds_frequencies_by_bs_max() {
        let col = skewed_column();
        for bs_max in [2usize, 5, 10] {
            let mut rng = StdRng::seed_from_u64(bs_max as u64);
            let params = BuildParams {
                bs_max,
                ..BuildParams::default()
            };
            let (_, av) = build_plain(&col, EdKind::Ed4, &params, &mut rng).unwrap();
            let profile = FrequencyProfile::of(&av);
            assert!(
                profile.max_count() <= bs_max,
                "bs_max {bs_max}: max {}",
                profile.max_count()
            );
        }
    }

    #[test]
    fn hiding_kinds_are_frequency_flat() {
        let col = skewed_column();
        for kind in [EdKind::Ed7, EdKind::Ed8, EdKind::Ed9] {
            let mut rng = StdRng::seed_from_u64(kind.number() as u64);
            let (_, av) = build_plain(&col, kind, &BuildParams::default(), &mut rng).unwrap();
            assert!(FrequencyProfile::of(&av).is_flat(), "{kind} not flat");
        }
    }

    #[test]
    fn sorted_kinds_leak_full_order() {
        let col = skewed_column();
        let mut rng = StdRng::seed_from_u64(3);
        let (dict, _) = build_plain(&col, EdKind::Ed1, &BuildParams::default(), &mut rng).unwrap();
        assert_eq!(order_correlation(&dict_plaintexts(&dict)), 1.0);
    }

    #[test]
    fn rotated_kinds_leak_only_modular_order() {
        let col = skewed_column();
        // Find a seed with a nonzero rotation (offset 0 degenerates to
        // sorted, which is legitimate but uninformative here).
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (dict, _) =
                build_plain(&col, EdKind::Ed2, &BuildParams::default(), &mut rng).unwrap();
            if dict.rnd_offset().unwrap() == 0 {
                continue;
            }
            let pts = dict_plaintexts(&dict);
            assert!(order_correlation(&pts) < 1.0, "rotation hides plain order");
            assert_eq!(modular_order_correlation(&pts), 1.0);
            return;
        }
        panic!("no nonzero rotation in 20 seeds");
    }

    #[test]
    fn unsorted_kinds_destroy_order() {
        let values: Vec<String> = (0..500).map(|i| format!("v{i:05}")).collect();
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let (dict, _) = build_plain(&col, EdKind::Ed3, &BuildParams::default(), &mut rng).unwrap();
        let corr = order_correlation(&dict_plaintexts(&dict));
        // A random permutation orders ~50% of adjacent pairs.
        assert!(corr < 0.65, "corr = {corr}");
        let mcorr = modular_order_correlation(&dict_plaintexts(&dict));
        assert!(mcorr < 0.65, "modular corr = {mcorr}");
    }

    #[test]
    fn figure6_empirical_dominance() {
        // Empirically verify the Figure 6 ordering on one skewed column:
        // moving down a column of Table 2 weakly reduces max frequency;
        // moving right weakly reduces order correlation.
        let col = skewed_column();
        let params = BuildParams {
            bs_max: 5,
            ..BuildParams::default()
        };
        let report = |kind: EdKind, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let (dict, av) = build_plain(&col, kind, &params, &mut rng).unwrap();
            analyze(&av, &dict_plaintexts(&dict))
        };
        let r1 = report(EdKind::Ed1, 10);
        let r4 = report(EdKind::Ed4, 11);
        let r7 = report(EdKind::Ed7, 12);
        assert!(r4.max_frequency <= r1.max_frequency);
        assert!(r7.max_frequency <= r4.max_frequency);
        assert_eq!(r7.max_frequency, 1);

        let r2 = report(EdKind::Ed2, 13);
        let r3 = report(EdKind::Ed3, 14);
        assert!(r2.modular_order_corr >= 0.99);
        assert!(r3.modular_order_corr < r2.modular_order_corr);
    }

    #[test]
    fn order_correlation_edge_cases() {
        assert_eq!(order_correlation(&[]), 1.0);
        assert_eq!(order_correlation(&[b"x".to_vec()]), 1.0);
        assert_eq!(modular_order_correlation(&[b"x".to_vec()]), 1.0);
    }
}
