//! Range queries and their encrypted wire form.
//!
//! The trusted proxy converts every filter — equality, inequality, greater
//! than, less than, between — into a single range select (paper Fig. 5 step
//! 5), so the untrusted server cannot distinguish query types. Each bound
//! is encrypted with PAE under the column key; the bound *type* (inclusive,
//! exclusive, unbounded) travels inside the ciphertext so nothing about the
//! query shape leaks.

use crate::error::EncdictError;
use encdbdb_crypto::{Ciphertext, Pae};
use rand::RngCore;

/// One side of a range query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeBound {
    /// Bound included in the range.
    Inclusive(Vec<u8>),
    /// Bound excluded from the range.
    Exclusive(Vec<u8>),
    /// No bound (the paper's `-∞` / `+∞` placeholder).
    Unbounded,
}

impl RangeBound {
    fn tag(&self) -> u8 {
        match self {
            RangeBound::Inclusive(_) => 0,
            RangeBound::Exclusive(_) => 1,
            RangeBound::Unbounded => 2,
        }
    }

    fn value(&self) -> &[u8] {
        match self {
            RangeBound::Inclusive(v) | RangeBound::Exclusive(v) => v,
            RangeBound::Unbounded => &[],
        }
    }
}

/// A plaintext range query `R = (R_s, R_e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeQuery {
    /// Range start.
    pub start: RangeBound,
    /// Range end.
    pub end: RangeBound,
}

impl RangeQuery {
    /// The closed range `[start, end]`.
    pub fn between(start: impl Into<Vec<u8>>, end: impl Into<Vec<u8>>) -> Self {
        RangeQuery {
            start: RangeBound::Inclusive(start.into()),
            end: RangeBound::Inclusive(end.into()),
        }
    }

    /// Equality select `v = x`, expressed as `[x, x]`.
    pub fn equals(v: impl Into<Vec<u8>>) -> Self {
        let v = v.into();
        RangeQuery::between(v.clone(), v)
    }

    /// `v < x` (exclusive upper bound, unbounded start).
    pub fn less_than(v: impl Into<Vec<u8>>) -> Self {
        RangeQuery {
            start: RangeBound::Unbounded,
            end: RangeBound::Exclusive(v.into()),
        }
    }

    /// `v <= x`.
    pub fn at_most(v: impl Into<Vec<u8>>) -> Self {
        RangeQuery {
            start: RangeBound::Unbounded,
            end: RangeBound::Inclusive(v.into()),
        }
    }

    /// `v > x` (exclusive lower bound, unbounded end).
    pub fn greater_than(v: impl Into<Vec<u8>>) -> Self {
        RangeQuery {
            start: RangeBound::Exclusive(v.into()),
            end: RangeBound::Unbounded,
        }
    }

    /// `v >= x`.
    pub fn at_least(v: impl Into<Vec<u8>>) -> Self {
        RangeQuery {
            start: RangeBound::Inclusive(v.into()),
            end: RangeBound::Unbounded,
        }
    }

    /// Whether this range provably matches nothing, from its bounds alone
    /// (`start > end`, or `start == end` with either side exclusive).
    /// Conjunction rewrites drop such ranges instead of searching them.
    pub fn is_provably_empty(&self) -> bool {
        let (s, s_excl) = match &self.start {
            RangeBound::Inclusive(v) => (v, false),
            RangeBound::Exclusive(v) => (v, true),
            RangeBound::Unbounded => return false,
        };
        let (e, e_excl) = match &self.end {
            RangeBound::Inclusive(v) => (v, false),
            RangeBound::Exclusive(v) => (v, true),
            RangeBound::Unbounded => return false,
        };
        match s.cmp(e) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => s_excl || e_excl,
            std::cmp::Ordering::Less => false,
        }
    }

    /// Whether a value matches this range.
    pub fn contains(&self, v: &[u8]) -> bool {
        let lo_ok = match &self.start {
            RangeBound::Inclusive(s) => v >= s.as_slice(),
            RangeBound::Exclusive(s) => v > s.as_slice(),
            RangeBound::Unbounded => true,
        };
        if !lo_ok {
            return false;
        }
        match &self.end {
            RangeBound::Inclusive(e) => v <= e.as_slice(),
            RangeBound::Exclusive(e) => v < e.as_slice(),
            RangeBound::Unbounded => true,
        }
    }
}

/// The encrypted range `τ = (τ_s, τ_e)` as sent to the untrusted server.
#[derive(Debug, Clone)]
pub struct EncryptedRange {
    /// Encrypted start bound.
    pub tau_s: Ciphertext,
    /// Encrypted end bound.
    pub tau_e: Ciphertext,
}

const RANGE_AAD: &[u8] = b"encdbdb/range-bound/v1";

fn encrypt_bound<R: RngCore + ?Sized>(pae: &Pae, rng: &mut R, bound: &RangeBound) -> Ciphertext {
    let mut pt = Vec::with_capacity(1 + bound.value().len());
    pt.push(bound.tag());
    pt.extend_from_slice(bound.value());
    pae.encrypt_with_rng(rng, &pt, RANGE_AAD)
}

fn decrypt_bound(pae: &Pae, ct: &Ciphertext) -> Result<RangeBound, EncdictError> {
    let pt = pae.decrypt(ct, RANGE_AAD)?;
    let (&tag, value) = pt
        .split_first()
        .ok_or(EncdictError::CorruptDictionary("empty range bound"))?;
    Ok(match tag {
        0 => RangeBound::Inclusive(value.to_vec()),
        1 => RangeBound::Exclusive(value.to_vec()),
        2 => RangeBound::Unbounded,
        _ => return Err(EncdictError::CorruptDictionary("unknown bound tag")),
    })
}

impl EncryptedRange {
    /// Encrypts a range query under the column PAE (done by the proxy).
    pub fn encrypt<R: RngCore + ?Sized>(pae: &Pae, rng: &mut R, query: &RangeQuery) -> Self {
        EncryptedRange {
            tau_s: encrypt_bound(pae, rng, &query.start),
            tau_e: encrypt_bound(pae, rng, &query.end),
        }
    }

    /// Decrypts the range (done inside the enclave, Algorithm 1 line 2).
    ///
    /// # Errors
    ///
    /// Returns [`EncdictError::Crypto`] on tampering or a wrong key.
    pub fn decrypt(&self, pae: &Pae) -> Result<RangeQuery, EncdictError> {
        Ok(RangeQuery {
            start: decrypt_bound(pae, &self.tau_s)?,
            end: decrypt_bound(pae, &self.tau_e)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encdbdb_crypto::Key128;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn contains_all_bound_shapes() {
        assert!(RangeQuery::between("b", "d").contains(b"b"));
        assert!(RangeQuery::between("b", "d").contains(b"d"));
        assert!(!RangeQuery::between("b", "d").contains(b"a"));
        assert!(!RangeQuery::between("b", "d").contains(b"e"));

        assert!(RangeQuery::equals("x").contains(b"x"));
        assert!(!RangeQuery::equals("x").contains(b"y"));

        assert!(RangeQuery::less_than("c").contains(b"b"));
        assert!(!RangeQuery::less_than("c").contains(b"c"));
        assert!(RangeQuery::at_most("c").contains(b"c"));

        assert!(RangeQuery::greater_than("c").contains(b"d"));
        assert!(!RangeQuery::greater_than("c").contains(b"c"));
        assert!(RangeQuery::at_least("c").contains(b"c"));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let pae = Pae::new(&Key128::from_bytes([1; 16]));
        let mut rng = StdRng::seed_from_u64(9);
        for q in [
            RangeQuery::between("Archie", "Hans"),
            RangeQuery::equals("Jessica"),
            RangeQuery::less_than("Ella"),
            RangeQuery::greater_than("Ella"),
            RangeQuery {
                start: RangeBound::Unbounded,
                end: RangeBound::Unbounded,
            },
        ] {
            let enc = EncryptedRange::encrypt(&pae, &mut rng, &q);
            assert_eq!(enc.decrypt(&pae).unwrap(), q);
        }
    }

    #[test]
    fn ciphertexts_hide_query_type() {
        // An equality and a range query must be indistinguishable in length
        // for same-length values (paper: "the untrusted DBaaS provider
        // cannot differentiate query types").
        let pae = Pae::new(&Key128::from_bytes([1; 16]));
        let mut rng = StdRng::seed_from_u64(10);
        let eq = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::equals("abcd"));
        let rg = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::between("aaaa", "zzzz"));
        assert_eq!(eq.tau_s.len(), rg.tau_s.len());
        assert_eq!(eq.tau_e.len(), rg.tau_e.len());
    }

    #[test]
    fn wrong_key_rejected() {
        let pae1 = Pae::new(&Key128::from_bytes([1; 16]));
        let pae2 = Pae::new(&Key128::from_bytes([2; 16]));
        let mut rng = StdRng::seed_from_u64(11);
        let enc = EncryptedRange::encrypt(&pae1, &mut rng, &RangeQuery::equals("x"));
        assert!(enc.decrypt(&pae2).is_err());
    }

    #[test]
    fn same_query_encrypts_differently() {
        let pae = Pae::new(&Key128::from_bytes([1; 16]));
        let mut rng = StdRng::seed_from_u64(12);
        let q = RangeQuery::equals("repeat");
        let a = EncryptedRange::encrypt(&pae, &mut rng, &q);
        let b = EncryptedRange::encrypt(&pae, &mut rng, &q);
        // Probabilistic encryption: the server cannot tell repeated queries
        // apart (paper: "it also cannot learn if the values were queried
        // before").
        assert_ne!(a.tau_s.as_bytes(), b.tau_s.as_bytes());
    }
}
