//! The nine encrypted dictionary types (paper Table 2).
//!
//! An encrypted dictionary is defined by one *repetition* option (how often
//! values repeat in `D`) and one *order* option (how `D` is arranged):
//!
//! | | sorted | rotated | unsorted |
//! |---|---|---|---|
//! | frequency revealing | ED1 | ED2 | ED3 |
//! | frequency smoothing | ED4 | ED5 | ED6 |
//! | frequency hiding    | ED7 | ED8 | ED9 |

use std::fmt;

/// How values are repeated in the dictionary (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepetitionOption {
    /// Each unique value appears exactly once: full frequency leakage,
    /// best compression (`|D| = |un(C)|`).
    Revealing,
    /// Values are split into random-size buckets of at most `bs_max`
    /// occurrences each: bounded frequency leakage (Algorithm 5).
    Smoothing,
    /// Every occurrence gets its own dictionary entry: no frequency
    /// leakage, no compression (`|D| = |AV|`).
    Hiding,
}

/// How the dictionary is ordered (paper Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderOption {
    /// Lexicographically sorted: full order leakage, `O(log |D|)` search.
    Sorted,
    /// Sorted, then rotated by a secret random offset: bounded order
    /// leakage, `O(log |D|)` search via the special binary search
    /// (Algorithm 3).
    Rotated,
    /// Randomly shuffled: no order leakage, `O(|D|)` linear-scan search
    /// (Algorithm 4).
    Unsorted,
}

/// One of the nine encrypted dictionaries ED1–ED9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdKind {
    /// Frequency revealing, sorted.
    Ed1,
    /// Frequency revealing, rotated.
    Ed2,
    /// Frequency revealing, unsorted.
    Ed3,
    /// Frequency smoothing, sorted.
    Ed4,
    /// Frequency smoothing, rotated.
    Ed5,
    /// Frequency smoothing, unsorted.
    Ed6,
    /// Frequency hiding, sorted.
    Ed7,
    /// Frequency hiding, rotated.
    Ed8,
    /// Frequency hiding, unsorted.
    Ed9,
}

impl EdKind {
    /// All nine kinds in paper order.
    pub const ALL: [EdKind; 9] = [
        EdKind::Ed1,
        EdKind::Ed2,
        EdKind::Ed3,
        EdKind::Ed4,
        EdKind::Ed5,
        EdKind::Ed6,
        EdKind::Ed7,
        EdKind::Ed8,
        EdKind::Ed9,
    ];

    /// The repetition option of this kind.
    pub fn repetition(self) -> RepetitionOption {
        match self {
            EdKind::Ed1 | EdKind::Ed2 | EdKind::Ed3 => RepetitionOption::Revealing,
            EdKind::Ed4 | EdKind::Ed5 | EdKind::Ed6 => RepetitionOption::Smoothing,
            EdKind::Ed7 | EdKind::Ed8 | EdKind::Ed9 => RepetitionOption::Hiding,
        }
    }

    /// The order option of this kind.
    pub fn order(self) -> OrderOption {
        match self {
            EdKind::Ed1 | EdKind::Ed4 | EdKind::Ed7 => OrderOption::Sorted,
            EdKind::Ed2 | EdKind::Ed5 | EdKind::Ed8 => OrderOption::Rotated,
            EdKind::Ed3 | EdKind::Ed6 | EdKind::Ed9 => OrderOption::Unsorted,
        }
    }

    /// Builds the kind from its two options (Table 2 lookup).
    pub fn from_options(repetition: RepetitionOption, order: OrderOption) -> Self {
        use OrderOption as O;
        use RepetitionOption as R;
        match (repetition, order) {
            (R::Revealing, O::Sorted) => EdKind::Ed1,
            (R::Revealing, O::Rotated) => EdKind::Ed2,
            (R::Revealing, O::Unsorted) => EdKind::Ed3,
            (R::Smoothing, O::Sorted) => EdKind::Ed4,
            (R::Smoothing, O::Rotated) => EdKind::Ed5,
            (R::Smoothing, O::Unsorted) => EdKind::Ed6,
            (R::Hiding, O::Sorted) => EdKind::Ed7,
            (R::Hiding, O::Rotated) => EdKind::Ed8,
            (R::Hiding, O::Unsorted) => EdKind::Ed9,
        }
    }

    /// The paper's 1-based number of this kind (ED\<n\>).
    pub fn number(self) -> u8 {
        match self {
            EdKind::Ed1 => 1,
            EdKind::Ed2 => 2,
            EdKind::Ed3 => 3,
            EdKind::Ed4 => 4,
            EdKind::Ed5 => 5,
            EdKind::Ed6 => 6,
            EdKind::Ed7 => 7,
            EdKind::Ed8 => 8,
            EdKind::Ed9 => 9,
        }
    }

    /// Parses `"ED5"` / `"ed5"` style names.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.len() != 3 || !s[..2].eq_ignore_ascii_case("ed") {
            return None;
        }
        match s.as_bytes()[2] {
            b'1' => Some(EdKind::Ed1),
            b'2' => Some(EdKind::Ed2),
            b'3' => Some(EdKind::Ed3),
            b'4' => Some(EdKind::Ed4),
            b'5' => Some(EdKind::Ed5),
            b'6' => Some(EdKind::Ed6),
            b'7' => Some(EdKind::Ed7),
            b'8' => Some(EdKind::Ed8),
            b'9' => Some(EdKind::Ed9),
            _ => None,
        }
    }

    /// Frequency-leakage class of this kind (Table 3).
    pub fn frequency_leakage(self) -> LeakageLevel {
        match self.repetition() {
            RepetitionOption::Revealing => LeakageLevel::Full,
            RepetitionOption::Smoothing => LeakageLevel::Bounded,
            RepetitionOption::Hiding => LeakageLevel::None,
        }
    }

    /// Order-leakage class of this kind (Table 4).
    pub fn order_leakage(self) -> LeakageLevel {
        match self.order() {
            OrderOption::Sorted => LeakageLevel::Full,
            OrderOption::Rotated => LeakageLevel::Bounded,
            OrderOption::Unsorted => LeakageLevel::None,
        }
    }

    /// `true` if this kind is at least as secure as `other` in *both*
    /// leakage dimensions — the partial order of the paper's Figure 6
    /// (`other ≤ self`).
    pub fn at_least_as_secure_as(self, other: EdKind) -> bool {
        // LeakageLevel orders by increasing security (Full < Bounded < None).
        self.frequency_leakage() >= other.frequency_leakage()
            && self.order_leakage() >= other.order_leakage()
    }
}

impl fmt::Display for EdKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ED{}", self.number())
    }
}

/// How much of a property leaks to the honest-but-curious attacker.
///
/// Ordered by *increasing security*: `Full < Bounded < None`, so
/// `a < b` means "b leaks less than a".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeakageLevel {
    /// The property is fully visible (e.g. exact frequencies).
    Full,
    /// Leakage is bounded by a parameter (bs_max / rotation offset).
    Bounded,
    /// Nothing about the property leaks.
    None,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_grid_is_consistent() {
        for kind in EdKind::ALL {
            assert_eq!(EdKind::from_options(kind.repetition(), kind.order()), kind);
        }
    }

    #[test]
    fn numbers_match_paper() {
        assert_eq!(EdKind::Ed1.number(), 1);
        assert_eq!(EdKind::Ed5.number(), 5);
        assert_eq!(EdKind::Ed9.number(), 9);
        for (i, kind) in EdKind::ALL.iter().enumerate() {
            assert_eq!(kind.number() as usize, i + 1);
        }
    }

    #[test]
    fn parse_roundtrip() {
        for kind in EdKind::ALL {
            assert_eq!(EdKind::parse(&kind.to_string()), Some(kind));
            assert_eq!(EdKind::parse(&kind.to_string().to_lowercase()), Some(kind));
        }
        assert_eq!(EdKind::parse("ED0"), None);
        assert_eq!(EdKind::parse("ED10"), None);
        assert_eq!(EdKind::parse("XY1"), None);
    }

    #[test]
    fn leakage_table_3_and_4() {
        assert_eq!(EdKind::Ed1.frequency_leakage(), LeakageLevel::Full);
        assert_eq!(EdKind::Ed5.frequency_leakage(), LeakageLevel::Bounded);
        assert_eq!(EdKind::Ed9.frequency_leakage(), LeakageLevel::None);
        assert_eq!(EdKind::Ed1.order_leakage(), LeakageLevel::Full);
        assert_eq!(EdKind::Ed5.order_leakage(), LeakageLevel::Bounded);
        assert_eq!(EdKind::Ed9.order_leakage(), LeakageLevel::None);
    }

    #[test]
    fn figure6_partial_order() {
        // Columns of Figure 6: ED1 ≤ ED4 ≤ ED7, ED2 ≤ ED5 ≤ ED8, ED3 ≤ ED6 ≤ ED9.
        for (a, b, c) in [
            (EdKind::Ed1, EdKind::Ed4, EdKind::Ed7),
            (EdKind::Ed2, EdKind::Ed5, EdKind::Ed8),
            (EdKind::Ed3, EdKind::Ed6, EdKind::Ed9),
        ] {
            assert!(b.at_least_as_secure_as(a));
            assert!(c.at_least_as_secure_as(b));
            assert!(c.at_least_as_secure_as(a));
        }
        // Rows: ED1 ≤ ED2 ≤ ED3, etc.
        for (a, b, c) in [
            (EdKind::Ed1, EdKind::Ed2, EdKind::Ed3),
            (EdKind::Ed4, EdKind::Ed5, EdKind::Ed6),
            (EdKind::Ed7, EdKind::Ed8, EdKind::Ed9),
        ] {
            assert!(b.at_least_as_secure_as(a));
            assert!(c.at_least_as_secure_as(b));
        }
        // ED9 dominates everything; ED1 dominates nothing but itself.
        for kind in EdKind::ALL {
            assert!(EdKind::Ed9.at_least_as_secure_as(kind));
            assert!(kind.at_least_as_secure_as(EdKind::Ed1));
        }
        // Incomparable pair: ED3 (no order leak, full freq) vs ED7 (full
        // order leak, no freq leak).
        assert!(!EdKind::Ed3.at_least_as_secure_as(EdKind::Ed7));
        assert!(!EdKind::Ed7.at_least_as_secure_as(EdKind::Ed3));
    }

    #[test]
    fn leakage_level_ordering() {
        assert!(LeakageLevel::Full < LeakageLevel::Bounded);
        assert!(LeakageLevel::Bounded < LeakageLevel::None);
    }
}
