//! Binary persistence for encrypted dictionaries and attribute vectors.
//!
//! The paper's in-memory DBMS keeps the primary copy in RAM and writes all
//! data to disk for durability (Fig. 5 step 4). Encrypted dictionaries are
//! ciphertext already, so they can rest on untrusted disk verbatim; this
//! module provides a length-prefixed binary format mirroring
//! `colstore::persist`.

use crate::dict::{EncryptedDictionary, PlainDictionary};
use crate::error::EncdictError;
use crate::kind::EdKind;
use colstore::dictionary::{AttributeVector, ValueId};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"ENCDBED1";
const PLAIN_MAGIC: &[u8; 8] = b"ENCDBPD1";

fn kind_from_byte(b: u8) -> Result<EdKind, EncdictError> {
    Ok(match b {
        1 => EdKind::Ed1,
        2 => EdKind::Ed2,
        3 => EdKind::Ed3,
        4 => EdKind::Ed4,
        5 => EdKind::Ed5,
        6 => EdKind::Ed6,
        7 => EdKind::Ed7,
        8 => EdKind::Ed8,
        9 => EdKind::Ed9,
        _ => return Err(EncdictError::CorruptDictionary("unknown kind")),
    })
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Serializes an encrypted dictionary plus its attribute vector.
pub fn to_bytes(dict: &EncryptedDictionary, av: &AttributeVector) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(dict.kind().number());
    put_bytes(&mut out, dict.table_name().as_bytes());
    put_bytes(&mut out, dict.col_name().as_bytes());
    out.extend_from_slice(&(dict.max_len() as u64).to_le_bytes());
    out.extend_from_slice(&(dict.len() as u64).to_le_bytes());
    // Head and tail are reconstructed from the per-entry ciphertexts so
    // the format is independent of the in-memory layout details.
    for i in 0..dict.len() {
        put_bytes(&mut out, dict.ciphertext(i));
    }
    match dict.enc_rnd_offset() {
        Some(enc) => {
            out.push(1);
            put_bytes(&mut out, enc);
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(av.len() as u64).to_le_bytes());
    for &id in av.as_slice() {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], EncdictError> {
        if self.pos + n > self.bytes.len() {
            return Err(EncdictError::CorruptDictionary("truncated blob"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, EncdictError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u8(&mut self) -> Result<u8, EncdictError> {
        Ok(self.take(1)?[0])
    }

    fn bytes_field(&mut self) -> Result<&'a [u8], EncdictError> {
        let len = self.u64()? as usize;
        if len > self.bytes.len() {
            return Err(EncdictError::CorruptDictionary("field length overflow"));
        }
        self.take(len)
    }
}

/// Deserializes an encrypted dictionary plus attribute vector.
///
/// # Errors
///
/// Returns [`EncdictError::CorruptDictionary`] on any structural problem.
/// Ciphertext *authenticity* is not checked here — the enclave rejects
/// tampered entries at decryption time, which is the paper's trust model
/// (integrity is end-to-end via AES-GCM, not via the storage layer).
pub fn from_bytes(bytes: &[u8]) -> Result<(EncryptedDictionary, AttributeVector), EncdictError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(EncdictError::CorruptDictionary("bad magic"));
    }
    let kind = kind_from_byte(r.u8()?)?;
    let table_name = String::from_utf8(r.bytes_field()?.to_vec())
        .map_err(|_| EncdictError::CorruptDictionary("table name not utf-8"))?;
    let col_name = String::from_utf8(r.bytes_field()?.to_vec())
        .map_err(|_| EncdictError::CorruptDictionary("column name not utf-8"))?;
    let max_len = r.u64()? as usize;
    let len = r.u64()? as usize;
    if len > bytes.len() {
        return Err(EncdictError::CorruptDictionary("entry count overflow"));
    }
    let mut head = Vec::with_capacity(len * crate::dict::HEAD_ENTRY_BYTES);
    let mut tail = Vec::new();
    for _ in 0..len {
        let ct = r.bytes_field()?;
        crate::dict::write_head_entry(&mut head, tail.len() as u64, ct.len() as u32);
        tail.extend_from_slice(ct);
    }
    let enc_rnd_offset = match r.u8()? {
        0 => None,
        1 => Some(r.bytes_field()?.to_vec()),
        _ => return Err(EncdictError::CorruptDictionary("bad offset flag")),
    };
    let av_len = r.u64()? as usize;
    if av_len > bytes.len() {
        return Err(EncdictError::CorruptDictionary("av count overflow"));
    }
    let mut av = AttributeVector::with_capacity(av_len);
    for _ in 0..av_len {
        av.push(ValueId(u32::from_le_bytes(r.take(4)?.try_into().unwrap())));
    }
    if r.pos != bytes.len() {
        return Err(EncdictError::CorruptDictionary("trailing bytes"));
    }
    let dict = EncryptedDictionary::from_parts(
        kind,
        table_name,
        col_name,
        max_len,
        len,
        head,
        tail,
        enc_rnd_offset,
    )?;
    Ok((dict, av))
}

/// Serializes a plaintext dictionary plus its attribute vector.
///
/// PLAIN columns have no ciphertext to rest on disk verbatim, so the
/// durable layer serializes the dictionary's values and rotation offset in
/// the clear and relies on the caller (the server's sealed-snapshot layer)
/// to wrap the whole blob in enclave sealing before it touches disk.
pub fn plain_to_bytes(dict: &PlainDictionary, av: &AttributeVector) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(PLAIN_MAGIC);
    out.push(dict.kind().number());
    out.extend_from_slice(&(dict.max_len() as u64).to_le_bytes());
    out.extend_from_slice(&(dict.len() as u64).to_le_bytes());
    for i in 0..dict.len() {
        put_bytes(&mut out, dict.value(i));
    }
    match dict.rnd_offset() {
        Some(off) => {
            out.push(1);
            out.extend_from_slice(&off.to_le_bytes());
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(av.len() as u64).to_le_bytes());
    for &id in av.as_slice() {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

/// Deserializes a plaintext dictionary plus attribute vector.
///
/// # Errors
///
/// Returns [`EncdictError::CorruptDictionary`] on any structural problem.
pub fn plain_from_bytes(bytes: &[u8]) -> Result<(PlainDictionary, AttributeVector), EncdictError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8)? != PLAIN_MAGIC {
        return Err(EncdictError::CorruptDictionary("bad magic"));
    }
    let kind = kind_from_byte(r.u8()?)?;
    let max_len = r.u64()? as usize;
    let len = r.u64()? as usize;
    if len > bytes.len() {
        return Err(EncdictError::CorruptDictionary("entry count overflow"));
    }
    let mut head = Vec::with_capacity(len * crate::dict::HEAD_ENTRY_BYTES);
    let mut tail = Vec::new();
    for _ in 0..len {
        let v = r.bytes_field()?;
        if v.len() > max_len {
            return Err(EncdictError::CorruptDictionary("value exceeds max_len"));
        }
        crate::dict::write_head_entry(&mut head, tail.len() as u64, v.len() as u32);
        tail.extend_from_slice(v);
    }
    let rnd_offset = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return Err(EncdictError::CorruptDictionary("bad offset flag")),
    };
    let av_len = r.u64()? as usize;
    if av_len > bytes.len() {
        return Err(EncdictError::CorruptDictionary("av count overflow"));
    }
    let mut av = AttributeVector::with_capacity(av_len);
    for _ in 0..av_len {
        av.push(ValueId(u32::from_le_bytes(r.take(4)?.try_into().unwrap())));
    }
    if r.pos != bytes.len() {
        return Err(EncdictError::CorruptDictionary("trailing bytes"));
    }
    let dict = PlainDictionary::from_parts(kind, max_len, len, head, tail, rnd_offset)?;
    Ok((dict, av))
}

/// Writes a dictionary + attribute vector to a file.
///
/// # Errors
///
/// Returns [`EncdictError::CorruptDictionary`] wrapping I/O failures is
/// not appropriate here, so I/O errors are surfaced via `std::io::Error`.
pub fn write_file(
    path: &Path,
    dict: &EncryptedDictionary,
    av: &AttributeVector,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&to_bytes(dict, av))
}

/// Reads a dictionary + attribute vector from a file.
///
/// # Errors
///
/// I/O failures via `std::io::Error`; format failures are converted into
/// `InvalidData` errors carrying the [`EncdictError`].
pub fn read_file(path: &Path) -> std::io::Result<(EncryptedDictionary, AttributeVector)> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    from_bytes(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_encrypted, BuildParams};
    use colstore::column::Column;
    use encdbdb_crypto::Key128;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(kind: EdKind) -> (EncryptedDictionary, AttributeVector) {
        let col = Column::from_strs("c", 8, ["x", "y", "x", "z"]).unwrap();
        let mut rng = StdRng::seed_from_u64(kind.number() as u64);
        build_encrypted(
            &col,
            kind,
            &BuildParams::default(),
            &Key128::from_bytes([3; 16]),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_all_kinds() {
        for kind in EdKind::ALL {
            let (dict, av) = sample(kind);
            let blob = to_bytes(&dict, &av);
            let (dict2, av2) = from_bytes(&blob).unwrap();
            assert_eq!(dict2.kind(), kind);
            assert_eq!(dict2.len(), dict.len());
            assert_eq!(dict2.max_len(), dict.max_len());
            assert_eq!(dict2.enc_rnd_offset(), dict.enc_rnd_offset());
            assert_eq!(av2, av);
            for i in 0..dict.len() {
                assert_eq!(dict2.ciphertext(i), dict.ciphertext(i), "{kind} entry {i}");
            }
        }
    }

    #[test]
    fn file_roundtrip_and_requery() {
        use crate::enclave_ops::DictEnclave;
        use crate::range::{EncryptedRange, RangeQuery};
        use encdbdb_crypto::hkdf::derive_column_key;

        let skdb = Key128::from_bytes([8; 16]);
        let sk_d = derive_column_key(&skdb, "t", "c");
        let col = Column::from_strs("c", 8, ["m", "a", "q", "a"]).unwrap();
        let mut rng = StdRng::seed_from_u64(50);
        let params = BuildParams {
            table_name: "t".into(),
            col_name: "c".into(),
            bs_max: 3,
        };
        let (dict, av) = build_encrypted(&col, EdKind::Ed2, &params, &sk_d, &mut rng).unwrap();

        let dir = std::env::temp_dir().join("encdict-persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.bin");
        write_file(&path, &dict, &av).unwrap();
        let (dict2, av2) = read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // The reloaded dictionary is searchable with the same key.
        let mut enclave = DictEnclave::with_seed(51);
        enclave.provision_direct(skdb);
        let tau = EncryptedRange::encrypt(
            &encdbdb_crypto::Pae::new(&sk_d),
            &mut rng,
            &RangeQuery::equals("a"),
        );
        let result = enclave.search(&dict2, &tau).unwrap();
        let rids = crate::avsearch::search(
            &av2,
            &result,
            dict2.len(),
            crate::avsearch::SetSearchStrategy::PaperLinear,
            crate::avsearch::Parallelism::Serial,
        );
        assert_eq!(rids.iter().map(|r| r.0).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn plain_roundtrip_all_kinds() {
        use crate::build::build_plain;
        let col = Column::from_strs("c", 8, ["x", "y", "x", "z", ""]).unwrap();
        for kind in EdKind::ALL {
            let mut rng = StdRng::seed_from_u64(kind.number() as u64 + 40);
            let (dict, av) = build_plain(&col, kind, &BuildParams::default(), &mut rng).unwrap();
            let blob = plain_to_bytes(&dict, &av);
            let (dict2, av2) = plain_from_bytes(&blob).unwrap();
            assert_eq!(dict2.kind(), kind);
            assert_eq!(dict2.max_len(), dict.max_len());
            assert_eq!(dict2.len(), dict.len());
            assert_eq!(dict2.rnd_offset(), dict.rnd_offset());
            assert_eq!(av2, av);
            for i in 0..dict.len() {
                assert_eq!(dict2.value(i), dict.value(i), "{kind} entry {i}");
            }
        }
    }

    #[test]
    fn corrupt_plain_blobs_rejected() {
        use crate::build::build_plain;
        let col = Column::from_strs("c", 8, ["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let (dict, av) = build_plain(&col, EdKind::Ed4, &BuildParams::default(), &mut rng).unwrap();
        let blob = plain_to_bytes(&dict, &av);
        let mut bad = blob.clone();
        bad[0] ^= 1;
        assert!(plain_from_bytes(&bad).is_err());
        for cut in [4usize, 9, 20, blob.len() - 1] {
            assert!(
                plain_from_bytes(&blob[..cut.min(blob.len())]).is_err(),
                "cut {cut}"
            );
        }
        let mut long = blob.clone();
        long.push(0);
        assert!(plain_from_bytes(&long).is_err());
        let mut bad_kind = blob;
        bad_kind[8] = 0;
        assert!(plain_from_bytes(&bad_kind).is_err());
    }

    #[test]
    fn corrupt_blobs_rejected() {
        let (dict, av) = sample(EdKind::Ed5);
        let blob = to_bytes(&dict, &av);
        // Bad magic.
        let mut bad = blob.clone();
        bad[0] ^= 1;
        assert!(from_bytes(&bad).is_err());
        // Truncations at every prefix boundary.
        for cut in [4usize, 9, 20, blob.len() - 1] {
            assert!(
                from_bytes(&blob[..cut.min(blob.len())]).is_err(),
                "cut {cut}"
            );
        }
        // Trailing garbage.
        let mut long = blob.clone();
        long.push(0);
        assert!(from_bytes(&long).is_err());
        // Unknown kind byte.
        let mut bad_kind = blob;
        bad_kind[8] = 99;
        assert!(from_bytes(&bad_kind).is_err());
    }
}
