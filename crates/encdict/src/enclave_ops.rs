//! The trusted side: `EnclDictSearch` running inside the enclave.
//!
//! This module is the reproduction's *trusted computing base* — the
//! analogue of the paper's 1129-LoC C enclave. It implements the
//! [`enclave_sim::EnclaveLogic`] dispatch for dictionary search (plus value
//! re-encryption for delta-store merges) and the [`DictEnclave`] host-side
//! wrapper.
//!
//! Key properties the paper claims, enforced or measured here:
//!
//! * **One ECALL per query** (§5: "we pass a pointer to the encrypted
//!   dictionary into the enclave and it directly loads the data from the
//!   untrusted host process. Thus, only one context switch is necessary for
//!   each query") — [`DictEnclave::search`] is exactly one
//!   [`enclave_sim::Enclave::ecall`].
//! * **Constant trusted memory** — the search algorithms reuse one value
//!   buffer; [`enclave_sim::Enclave::trusted_heap_peak`] stays flat as `|D|`
//!   grows (asserted in tests).
//! * **Per-entry loads** — every dictionary entry touched is individually
//!   loaded through the counted [`enclave_sim::TrustedEnv::load`].

use crate::aggregate::AggPlanSpec;
use crate::dict::{EncryptedDictionary, HEAD_ENTRY_BYTES};
use crate::error::EncdictError;
use crate::kind::{EdKind, OrderOption};
use crate::range::EncryptedRange;
use crate::search::{rotated, sorted, unsorted, DictEntryReader, DictSearchResult};
use encdbdb_crypto::hkdf::derive_column_key;
use encdbdb_crypto::{Ciphertext, Pae};
use enclave_sim::{Enclave, EnclaveLogic, TrustedEnv, UntrustedMemory};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A dictionary-search ECALL request: references into untrusted memory plus
/// the metadata the query engine attaches in Fig. 5 step 7.
#[derive(Debug)]
pub struct SearchRequest<'a> {
    /// The encrypted-dictionary kind.
    pub kind: EdKind,
    /// Table name (key-derivation metadata).
    pub table_name: &'a str,
    /// Column name (key-derivation metadata).
    pub col_name: &'a str,
    /// Column fixed maximal value length.
    pub max_len: usize,
    /// Number of dictionary entries.
    pub dict_len: usize,
    /// Untrusted view of the dictionary head.
    pub head: UntrustedMemory<'a>,
    /// Untrusted view of the dictionary tail.
    pub tail: UntrustedMemory<'a>,
    /// Encrypted rotation offset for rotated kinds.
    pub enc_rnd_offset: Option<&'a [u8]>,
    /// The encrypted range filters τ — one per range of the column's
    /// disjunction. A plain comparison/BETWEEN is a one-element slice; an
    /// `IN (...)` lowering batches all its equality ranges into this one
    /// request so the whole disjunction costs a single ECALL.
    pub ranges: &'a [EncryptedRange],
    /// Generation tag enabling the in-enclave decrypted-value cache for
    /// this store; `None` disables caching (exact per-call load counts).
    pub cache: Option<CacheTag>,
}

impl<'a> SearchRequest<'a> {
    /// Builds a request for `dict` (the query engine's step 7 enrichment).
    pub fn for_dictionary(dict: &'a EncryptedDictionary, range: &'a EncryptedRange) -> Self {
        Self::for_dictionary_multi(dict, std::slice::from_ref(range), None)
    }

    /// [`SearchRequest::for_dictionary`] for a whole disjunction, with an
    /// optional cache generation tag.
    pub fn for_dictionary_multi(
        dict: &'a EncryptedDictionary,
        ranges: &'a [EncryptedRange],
        cache: Option<CacheTag>,
    ) -> Self {
        SearchRequest {
            kind: dict.kind(),
            table_name: dict.table_name(),
            col_name: dict.col_name(),
            max_len: dict.max_len(),
            dict_len: dict.len(),
            head: dict.head_mem(),
            tail: dict.tail_mem(),
            enc_rnd_offset: dict.enc_rnd_offset(),
            ranges,
            cache,
        }
    }
}

/// Identifies one generation of one column store for the in-enclave
/// decrypted-value cache (DESIGN.md §14). A cached entry is only ever
/// served while its `(part, epoch, delta)` triple still names the live
/// store: compaction publish bumps the partition epoch, so entries of the
/// replaced store simply stop matching — epoch keying *is* the
/// invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheTag {
    /// Caller-chosen partition discriminator, unique per partition of a
    /// table on one server (the partition index).
    pub part: u64,
    /// The partition's snapshot epoch at call time.
    pub epoch: u64,
    /// `false` = the main store, `true` = the delta store (their entry
    /// index spaces are unrelated).
    pub delta: bool,
}

/// A re-encryption ECALL request (delta-store ingest, §4.3): the enclave
/// decrypts an incoming ciphertext and re-encrypts it with a fresh IV so the
/// server cannot link the stored value to the inserted one.
#[derive(Debug)]
pub struct ReencryptRequest<'a> {
    /// Table name (key-derivation metadata).
    pub table_name: &'a str,
    /// Column name (key-derivation metadata).
    pub col_name: &'a str,
    /// The incoming ciphertext (PAE under the column key).
    pub ciphertext: &'a [u8],
}

/// A delta-merge ECALL request (§4.3): the enclave decrypts the valid main
/// and delta rows, rebuilds the dictionary with fresh IVs / rotation /
/// shuffle, and returns the new (still encrypted) main store — so old and
/// new stores are unlinkable from outside.
#[derive(Debug)]
pub struct MergeRequest<'a> {
    /// Table name (key-derivation metadata).
    pub table_name: &'a str,
    /// Column name (key-derivation metadata).
    pub col_name: &'a str,
    /// Column fixed maximal value length.
    pub max_len: usize,
    /// Kind to rebuild the main store as.
    pub kind: EdKind,
    /// bs_max for smoothing kinds.
    pub bs_max: usize,
    /// Main-store head.
    pub main_head: UntrustedMemory<'a>,
    /// Main-store tail.
    pub main_tail: UntrustedMemory<'a>,
    /// Number of main dictionary entries.
    pub main_len: usize,
    /// Main attribute vector (ValueIDs).
    pub main_av: &'a [u32],
    /// Which main rows are still valid.
    pub main_valid: &'a colstore::delta::ValidityVector,
    /// Delta-store head (ED9 layout).
    pub delta_head: UntrustedMemory<'a>,
    /// Delta-store tail.
    pub delta_tail: UntrustedMemory<'a>,
    /// Number of delta rows.
    pub delta_len: usize,
    /// Which delta rows are still valid.
    pub delta_valid: &'a colstore::delta::ValidityVector,
}

/// A reference to one encrypted dictionary segment (main store or delta
/// store) living in untrusted memory, in the §5 head/tail layout.
#[derive(Debug, Clone, Copy)]
pub struct SegmentRef<'a> {
    /// Fixed-width head entries.
    pub head: UntrustedMemory<'a>,
    /// Variable-width ciphertext tail.
    pub tail: UntrustedMemory<'a>,
    /// Number of entries.
    pub len: usize,
}

/// The value source of one column referenced by an aggregate query,
/// within one range partition.
///
/// Per-column codes address the concatenated main + delta value space of
/// that partition: code `< main.len` is a main-store ValueID,
/// `code - main.len` is a delta-store row.
#[derive(Debug)]
pub enum AggColumnData<'a> {
    /// An encrypted column: the enclave decrypts each listed code once
    /// (the batched value decryption — one `DecryptValue` per distinct
    /// touched ValueID, not per row).
    Encrypted {
        /// Main-store dictionary.
        main: SegmentRef<'a>,
        /// Delta-store dictionary (ED9 layout).
        delta: SegmentRef<'a>,
        /// Distinct touched codes, ascending; value-table index `i`
        /// resolves to `codes[i]`.
        codes: &'a [u32],
        /// `(partition discriminator, snapshot epoch)` enabling the
        /// in-enclave decrypted-value cache for this partition's stores;
        /// `None` disables caching.
        cache: Option<(u64, u64)>,
    },
    /// A PLAIN column: the distinct touched values, resolved by the
    /// untrusted caller, indexed directly by value-table index.
    Plain {
        /// Distinct touched values.
        values: &'a [Vec<u8>],
    },
}

/// One range partition's contribution to an aggregate query: its own
/// dictionary segments and its own ValueID-tuple histogram. ValueID
/// spaces of different partitions are unrelated; only the *plaintext*
/// group keys, recovered inside the enclave, align them.
#[derive(Debug)]
pub struct AggPartitionData<'a> {
    /// The referenced columns, in tuple order (aligned with the request's
    /// `col_names`).
    pub columns: Vec<AggColumnData<'a>>,
    /// The partition's histogram: per-column value-table indices plus row
    /// frequency.
    pub tuples: &'a [(Vec<u32>, u64)],
}

/// A grouped-aggregation ECALL request: the untrusted server has reduced
/// the matching rows of every scanned partition to a ValueID-tuple
/// histogram; the enclave decrypts each distinct touched value once per
/// partition, folds every partition into per-group *partial aggregates*,
/// merges the partials in the trusted core
/// ([`crate::aggregate::GroupPartials`]), evaluates GROUP BY / aggregates
/// / ORDER BY / LIMIT on plaintexts, and returns cells that are
/// re-encrypted under the originating column keys — so the server cannot
/// link output groups back to dictionary entries (which would reveal
/// equality classes of frequency-hiding dictionaries), nor correlate
/// group keys across partitions.
#[derive(Debug)]
pub struct AggregateRequest<'a> {
    /// Table name (key-derivation metadata).
    pub table_name: &'a str,
    /// Per referenced column: `Some(name)` for an encrypted column (the
    /// key-derivation metadata), `None` for PLAIN.
    pub col_names: Vec<Option<&'a str>>,
    /// One entry per scanned non-empty partition. Empty or pruned
    /// partitions contribute nothing — the enclave never sees them.
    pub parts: Vec<AggPartitionData<'a>>,
    /// Group/aggregate/sort/limit specification over the columns.
    pub plan: &'a AggPlanSpec,
}

/// The join-key source of one range partition of one join side.
///
/// Codes address the concatenated main + delta value space of the key
/// column, exactly like [`AggColumnData`]: code `< main.len` is a
/// main-store ValueID, `code - main.len` a delta-store row.
#[derive(Debug)]
pub enum JoinKeyData<'a> {
    /// An encrypted key column: the enclave decrypts each listed distinct
    /// code once.
    Encrypted {
        /// Main-store dictionary.
        main: SegmentRef<'a>,
        /// Delta-store dictionary (ED9 layout).
        delta: SegmentRef<'a>,
        /// Distinct touched codes, ascending.
        codes: &'a [u32],
        /// `(partition discriminator, snapshot epoch)` enabling the
        /// in-enclave decrypted-value cache; `None` disables caching.
        cache: Option<(u64, u64)>,
    },
    /// A PLAIN key column: the distinct touched values, resolved by the
    /// untrusted caller.
    Plain {
        /// Distinct touched values.
        values: &'a [Vec<u8>],
    },
}

/// One side of a join-bridge request: the key column's per-partition
/// distinct codes.
#[derive(Debug)]
pub struct JoinSideData<'a> {
    /// Table name (key-derivation metadata).
    pub table_name: &'a str,
    /// `Some(column)` for an encrypted key column (key-derivation
    /// metadata), `None` for PLAIN.
    pub col_name: Option<&'a str>,
    /// One entry per scanned non-empty partition.
    pub parts: Vec<JoinKeyData<'a>>,
}

/// A join-bridge ECALL request: the untrusted server has reduced each
/// side's matching rows to per-partition distinct join-key codes; the
/// enclave decrypts each distinct key once per side and returns an opaque
/// ValueID↔ValueID *bridge* — per-partition maps from distinct-code index
/// to a bridge id that is equal exactly when the plaintext keys are equal
/// and present on both sides. The hash build/probe then runs untrusted on
/// bridge ids; plaintext keys never leave the enclave, and bridge ids are
/// assigned in an enclave-shuffled order so they reveal nothing about key
/// *order* (DESIGN.md §11 analyzes what the bridge does reveal).
#[derive(Debug)]
pub struct JoinBridgeRequest<'a> {
    /// The build side.
    pub left: JoinSideData<'a>,
    /// The probe side.
    pub right: JoinSideData<'a>,
}

/// The enclave's reply to a [`JoinBridgeRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinBridgeReply {
    /// Per left partition, per distinct-code index: the key's bridge id,
    /// or `None` when the key has no match on the right side.
    pub left: Vec<Vec<Option<u32>>>,
    /// Per right partition, per distinct-code index, symmetrically.
    pub right: Vec<Vec<Option<u32>>>,
    /// Distinct join keys present on both sides.
    pub bridge_entries: usize,
    /// Dictionary values decrypted — at most one per distinct touched key
    /// code per side, never per row.
    pub values_decrypted: usize,
}

/// One output cell of an aggregate reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggCell {
    /// A PAE ciphertext under the originating column's key (fresh IV).
    Encrypted(Vec<u8>),
    /// A plaintext cell (PLAIN column data, or a COUNT).
    Plain(Vec<u8>),
}

/// The enclave's reply to an [`AggregateRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateReply {
    /// Output rows in final (sorted, limited) order; one cell per plan
    /// item.
    pub rows: Vec<Vec<AggCell>>,
    /// How many dictionary values were decrypted — bounded by the number
    /// of distinct touched ValueIDs, never by the row count.
    pub values_decrypted: usize,
}

/// ECALL message for the dictionary enclave.
#[derive(Debug)]
pub enum DictCall<'a> {
    /// Dictionary search (Fig. 5 step 8).
    Search(SearchRequest<'a>),
    /// Value re-encryption for delta inserts (§4.3).
    Reencrypt(ReencryptRequest<'a>),
    /// Delta-store merge into a fresh main store (§4.3).
    Merge(MergeRequest<'a>),
    /// Grouped aggregation over a ValueID histogram.
    Aggregate(AggregateRequest<'a>),
    /// Equi-join key bridging over per-side distinct ValueIDs.
    JoinBridge(JoinBridgeRequest<'a>),
    /// Several coalesced sub-calls executed in one enclave transition —
    /// the cross-session ECALL batching entry point. The whole vector
    /// costs a single context switch; sub-calls run back to back inside
    /// the enclave and each reply carries its own counter deltas so the
    /// host can attribute loads/bytes per request. Nesting is rejected.
    Batch(Vec<DictCall<'a>>),
}

/// ECALL reply.
#[derive(Debug)]
pub enum DictReply {
    /// Search results, one per requested range of the disjunction
    /// (ValueID ranges or lists).
    Search(Result<Vec<DictSearchResult>, EncdictError>),
    /// Re-encrypted ciphertext bytes.
    Reencrypted(Result<Vec<u8>, EncdictError>),
    /// Rebuilt main store.
    Merged(Result<(EncryptedDictionary, colstore::dictionary::AttributeVector), EncdictError>),
    /// Aggregation result.
    Aggregated(Result<AggregateReply, EncdictError>),
    /// Join-bridge result.
    Bridged(Result<JoinBridgeReply, EncdictError>),
    /// One reply per sub-call of a [`DictCall::Batch`], in request order.
    Batch(Vec<BatchItemReply>),
}

/// One sub-call's reply within a batched transition, with the counter
/// deltas that sub-call generated (captured inside the enclave between
/// sub-calls) — so per-request leakage accounting stays exact even
/// though the host only observes one transition.
#[derive(Debug)]
pub struct BatchItemReply {
    /// The sub-call's reply (never [`DictReply::Batch`]).
    pub reply: DictReply,
    /// Untrusted-memory loads issued while serving this sub-call.
    pub untrusted_loads: u64,
    /// Untrusted-memory bytes read while serving this sub-call.
    pub untrusted_bytes: u64,
    /// Decrypted-value cache hits scored by this sub-call.
    pub cache_hits: u64,
    /// Decrypted-value cache misses scored by this sub-call.
    pub cache_misses: u64,
}

/// One join side's per-partition bridge-id maps: for each partition, the
/// optional id of each distinct key code (aligned with the request's code
/// lists).
pub type SideIdMaps = Vec<Vec<Option<u32>>>;

/// The join-bridge core shared by the enclave and the all-PLAIN untrusted
/// path: keys present on BOTH sides get one bridge id each; everything
/// else maps to `None` (such a key provably joins nothing, which the
/// probe phase would reveal anyway). `arrange` reorders the matched key
/// list before ids are assigned — the enclave shuffles here so the
/// numbering carries no key-order information; the all-PLAIN path passes
/// a no-op since the server sees those plaintexts regardless.
///
/// Inputs are per-partition plaintext key tables (one entry per distinct
/// touched code, in code order); outputs are the per-partition id maps,
/// aligned index-for-index, plus the bridged-key count.
pub fn bridge_key_tables<'k>(
    left: &'k [Vec<Vec<u8>>],
    right: &'k [Vec<Vec<u8>>],
    arrange: impl FnOnce(&mut Vec<&'k [u8]>),
) -> (SideIdMaps, SideIdMaps, usize) {
    let left_keys: std::collections::HashSet<&[u8]> = left
        .iter()
        .flat_map(|t| t.iter().map(Vec::as_slice))
        .collect();
    let mut matched: Vec<&[u8]> = right
        .iter()
        .flat_map(|t| t.iter().map(Vec::as_slice))
        .filter(|k| left_keys.contains(*k))
        .collect::<std::collections::BTreeSet<&[u8]>>()
        .into_iter()
        .collect();
    arrange(&mut matched);
    let id_of: std::collections::HashMap<&[u8], u32> = matched
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u32))
        .collect();
    let map_side = |tables: &'k [Vec<Vec<u8>>]| -> Vec<Vec<Option<u32>>> {
        tables
            .iter()
            .map(|t| t.iter().map(|k| id_of.get(k.as_slice()).copied()).collect())
            .collect()
    };
    (map_side(left), map_side(right), matched.len())
}

/// Key of one cached decrypted value: `(interned column id, partition
/// discriminator, epoch·2 + store side, entry index)`.
type CacheKey = (u32, u64, u64, u32);

/// Entry cap of the in-enclave decrypted-value cache. Values are short
/// (column `max_len` bytes), so even at 256-byte values the cache tops
/// out around 2 MiB of the ~96 MiB EPC budget (tracked via
/// `track_alloc`, so it shows up in `trusted_heap_current`).
const VALUE_CACHE_CAPACITY: usize = 8192;

/// The bounded in-enclave cache of decrypted dictionary/delta entries
/// (DESIGN.md §14).
///
/// * **Keying.** Entries are keyed by column (interned `(table, col)`
///   pair), the caller's [`CacheTag`] generation (partition, epoch,
///   main/delta side), and the entry index. Main snapshots are immutable
///   per epoch and delta stores are append-only between compaction
///   publishes (the drain happens under the same publish that bumps the
///   epoch), so a populated entry can never go stale: the new epoch's
///   probes simply miss.
/// * **Eviction.** FIFO at [`VALUE_CACHE_CAPACITY`] entries. FIFO (not
///   LRU) keeps the eviction order independent of which probes *hit*, so
///   cache-occupancy side channels don't additionally encode hit
///   recency.
/// * **Leakage.** A hit answers from trusted memory: 0 untrusted loads,
///   0 decrypts — so per-call load counts become history-dependent
///   within an epoch. The ECALL itself is never skipped; see DESIGN.md
///   §14 for the full leakage delta next to the ED1–ED9 table.
#[derive(Debug, Default)]
struct ValueCache {
    /// Interned `(table, col)` pairs; position = column id. Linear scan —
    /// a deployment has few columns and interning is once per ECALL.
    cols: Vec<(String, String)>,
    map: std::collections::HashMap<CacheKey, Vec<u8>>,
    order: std::collections::VecDeque<CacheKey>,
}

impl ValueCache {
    fn col_id(&mut self, table: &str, col: &str) -> u32 {
        if let Some(i) = self.cols.iter().position(|(t, c)| t == table && c == col) {
            return i as u32;
        }
        self.cols.push((table.to_string(), col.to_string()));
        (self.cols.len() - 1) as u32
    }

    fn get(&self, key: &CacheKey) -> Option<&Vec<u8>> {
        self.map.get(key)
    }

    fn insert(&mut self, env: &mut TrustedEnv, key: CacheKey, value: Vec<u8>) {
        if self.map.len() >= VALUE_CACHE_CAPACITY {
            if let Some(oldest) = self.order.pop_front() {
                if let Some(evicted) = self.map.remove(&oldest) {
                    env.track_free(evicted.len());
                }
            }
        }
        env.track_alloc(value.len());
        if let Some(prev) = self.map.insert(key, value) {
            env.track_free(prev.len());
        } else {
            self.order.push_back(key);
        }
    }
}

/// A [`ValueCache`] scoped to one column store generation, handed to the
/// entry readers.
struct CacheHandle<'e> {
    cache: &'e mut ValueCache,
    colid: u32,
    part: u64,
    /// `epoch * 2 + side` (side: 0 = main, 1 = delta).
    gen: u64,
}

/// Reads dictionary entries from untrusted memory, decrypting inside the
/// enclave — the "load into the enclave individually, decrypt them there"
/// loop of Algorithm 1. With a [`CacheHandle`], entries already decrypted
/// this generation are served from trusted memory without any untrusted
/// load or decryption.
struct EnclaveDictReader<'a, 'e> {
    env: &'e mut TrustedEnv,
    head: UntrustedMemory<'a>,
    tail: UntrustedMemory<'a>,
    len: usize,
    pae: &'e Pae,
    cache: Option<CacheHandle<'e>>,
}

impl DictEntryReader for EnclaveDictReader<'_, '_> {
    fn len(&self) -> usize {
        self.len
    }

    fn read_into(&mut self, i: usize, buf: &mut Vec<u8>) -> Result<(), EncdictError> {
        if let Some(h) = &self.cache {
            if let Some(pt) = h.cache.get(&(h.colid, h.part, h.gen, i as u32)) {
                self.env.count_cache_hit();
                buf.clear();
                buf.extend_from_slice(pt);
                return Ok(());
            }
        }
        let entry = self
            .env
            .load(self.head, i * HEAD_ENTRY_BYTES, HEAD_ENTRY_BYTES);
        let offset = u64::from_le_bytes(entry[..8].try_into().unwrap()) as usize;
        let clen = u32::from_le_bytes(entry[8..12].try_into().unwrap()) as usize;
        if offset + clen > self.tail.len() {
            return Err(EncdictError::CorruptDictionary("tail offset out of range"));
        }
        let ct = self.env.load(self.tail, offset, clen);
        // Account the transient trusted buffer (ciphertext + plaintext).
        self.env.track_alloc(clen);
        let pt = self.pae.decrypt_bytes(ct, crate::build::DICT_VALUE_AAD)?;
        self.env.track_free(clen);
        buf.clear();
        buf.extend_from_slice(&pt);
        if let Some(h) = &mut self.cache {
            self.env.count_cache_miss();
            h.cache
                .insert(&mut *self.env, (h.colid, h.part, h.gen, i as u32), pt);
        }
        Ok(())
    }
}

/// The trusted dictionary-search logic.
///
/// Holds an in-enclave RNG for fresh IVs during re-encryption and the
/// bounded decrypted-value cache; all other state (the master key) lives
/// in the [`TrustedEnv`].
#[derive(Debug)]
pub struct DictLogic {
    rng: StdRng,
    value_cache: ValueCache,
}

impl DictLogic {
    /// Creates the logic with an OS-seeded in-enclave RNG.
    pub fn new() -> Self {
        DictLogic {
            rng: StdRng::from_entropy(),
            value_cache: ValueCache::default(),
        }
    }

    /// Creates the logic with a deterministic RNG (tests/benches).
    pub fn with_seed(seed: u64) -> Self {
        DictLogic {
            rng: StdRng::seed_from_u64(seed),
            value_cache: ValueCache::default(),
        }
    }

    fn column_pae(env: &TrustedEnv, table: &str, col: &str) -> Result<Pae, EncdictError> {
        // Algorithm 1 line 1: SK_D = DeriveKey(SK_DB, colName, tabName).
        let skdb = env.master_key().ok_or(EncdictError::KeyNotProvisioned)?;
        Ok(Pae::new(&derive_column_key(skdb, table, col)))
    }

    fn search(
        &mut self,
        env: &mut TrustedEnv,
        req: SearchRequest<'_>,
    ) -> Result<Vec<DictSearchResult>, EncdictError> {
        let pae = Self::column_pae(env, req.table_name, req.col_name)?;
        // Line 2: decrypt the ranges inside the enclave — the whole
        // disjunction arrives in one ECALL.
        let queries = req
            .ranges
            .iter()
            .map(|r| r.decrypt(&pae))
            .collect::<Result<Vec<_>, _>>()?;
        // An empty dictionary (freshly created table before any merge) has
        // nothing to search — and, for rotated kinds, no meaningful
        // rotation offset to validate.
        if req.dict_len == 0 {
            return Ok(queries
                .iter()
                .map(|_| match req.kind.order() {
                    OrderOption::Unsorted => DictSearchResult::Ids(Vec::new()),
                    _ => DictSearchResult::empty_ranges(),
                })
                .collect());
        }
        // Rotated kinds: validate/decrypt the rotation offset (Algorithm 2
        // line 3). The offset itself is not needed by our variant of the
        // special binary search — everything derives from eD[0] — but a
        // tampered offset must still be rejected.
        if req.kind.order() == OrderOption::Rotated {
            let enc = req
                .enc_rnd_offset
                .ok_or(EncdictError::CorruptDictionary("missing rotation offset"))?;
            let off = pae.decrypt_bytes(enc, crate::build::ROT_OFFSET_AAD)?;
            let off_bytes: [u8; 8] = off
                .try_into()
                .map_err(|_| EncdictError::CorruptDictionary("bad rotation offset"))?;
            let off = u64::from_le_bytes(off_bytes);
            if req.dict_len > 0 && off >= req.dict_len as u64 {
                return Err(EncdictError::CorruptDictionary(
                    "rotation offset out of range",
                ));
            }
        }
        let cache = match req.cache {
            Some(tag) => {
                let colid = self.value_cache.col_id(req.table_name, req.col_name);
                Some(CacheHandle {
                    cache: &mut self.value_cache,
                    colid,
                    part: tag.part,
                    gen: tag.epoch * 2 + tag.delta as u64,
                })
            }
            None => None,
        };
        let mut reader = EnclaveDictReader {
            env,
            head: req.head,
            tail: req.tail,
            len: req.dict_len,
            pae: &pae,
            cache,
        };
        match req.kind.order() {
            OrderOption::Sorted => queries
                .iter()
                .map(|q| sorted::search_sorted(&mut reader, q))
                .collect(),
            OrderOption::Rotated => queries
                .iter()
                .map(|q| rotated::search_rotated(&mut reader, q, req.max_len))
                .collect(),
            // A single pass over the dictionary answers every query at
            // once — the decrypt cost stays `|D|`, not `|D| · ranges`.
            OrderOption::Unsorted => unsorted::search_unsorted_multi(&mut reader, &queries),
        }
    }

    fn reencrypt(
        &mut self,
        env: &mut TrustedEnv,
        req: ReencryptRequest<'_>,
    ) -> Result<Vec<u8>, EncdictError> {
        let pae = Self::column_pae(env, req.table_name, req.col_name)?;
        let pt = pae.decrypt_bytes(req.ciphertext, crate::build::DICT_VALUE_AAD)?;
        env.track_alloc(pt.len());
        let ct = pae.encrypt_with_rng(&mut self.rng, &pt, crate::build::DICT_VALUE_AAD);
        env.track_free(pt.len());
        Ok(ct.into_bytes())
    }

    fn merge(
        &mut self,
        env: &mut TrustedEnv,
        req: MergeRequest<'_>,
    ) -> Result<(EncryptedDictionary, colstore::dictionary::AttributeVector), EncdictError> {
        let skdb = env.master_key().ok_or(EncdictError::KeyNotProvisioned)?;
        let sk_d = derive_column_key(skdb, req.table_name, req.col_name);
        let pae = Pae::new(&sk_d);

        let read_entry = |env: &mut TrustedEnv,
                          head: UntrustedMemory<'_>,
                          tail: UntrustedMemory<'_>,
                          i: usize|
         -> Result<Vec<u8>, EncdictError> {
            let entry = env.load(head, i * HEAD_ENTRY_BYTES, HEAD_ENTRY_BYTES);
            let offset = u64::from_le_bytes(entry[..8].try_into().unwrap()) as usize;
            let clen = u32::from_le_bytes(entry[8..12].try_into().unwrap()) as usize;
            if offset + clen > tail.len() {
                return Err(EncdictError::CorruptDictionary("tail offset out of range"));
            }
            let ct = env.load(tail, offset, clen);
            Ok(pae.decrypt_bytes(ct, crate::build::DICT_VALUE_AAD)?)
        };

        // Reassemble the logical plaintext column in the trusted realm:
        // valid main rows in row order, then valid delta rows. The merge is
        // the one operation whose trusted working set grows with the column;
        // the paper prescribes oblivious primitives here — we account the
        // memory instead (visible in trusted_heap_peak).
        let mut column = colstore::column::Column::new(req.col_name, req.max_len);
        let mut bytes_tracked = 0usize;
        for (j, &vid) in req.main_av.iter().enumerate() {
            if !req.main_valid.is_valid(j) {
                continue;
            }
            if vid as usize >= req.main_len {
                return Err(EncdictError::CorruptDictionary("value id out of range"));
            }
            let pt = read_entry(env, req.main_head, req.main_tail, vid as usize)?;
            bytes_tracked += pt.len();
            env.track_alloc(pt.len());
            column
                .push(&pt)
                .map_err(|_| EncdictError::CorruptDictionary("merged value exceeds maximum"))?;
        }
        for i in 0..req.delta_len {
            if !req.delta_valid.is_valid(i) {
                continue;
            }
            let pt = read_entry(env, req.delta_head, req.delta_tail, i)?;
            bytes_tracked += pt.len();
            env.track_alloc(pt.len());
            column
                .push(&pt)
                .map_err(|_| EncdictError::CorruptDictionary("merged value exceeds maximum"))?;
        }

        let params = crate::build::BuildParams {
            table_name: req.table_name.to_string(),
            col_name: req.col_name.to_string(),
            bs_max: req.bs_max,
        };
        let rebuilt =
            crate::build::build_encrypted(&column, req.kind, &params, &sk_d, &mut self.rng);
        env.track_free(bytes_tracked);
        rebuilt
    }

    /// Reads and decrypts entry `i` of a head/tail segment — the batched
    /// `DecryptValue` primitive shared by aggregation and the join bridge.
    ///
    /// `tag` is the value-cache generation `(colid, part, gen)` or `None`
    /// to bypass the cache. Returns `(plaintext, hit)`; on a hit nothing
    /// crossed the enclave boundary and nothing was decrypted, so callers
    /// must skip their `values_decrypted`/heap accounting.
    fn read_segment_entry(
        cache: &mut ValueCache,
        env: &mut TrustedEnv,
        seg: SegmentRef<'_>,
        pae: &Pae,
        tag: Option<(u32, u64, u64)>,
        i: usize,
    ) -> Result<(Vec<u8>, bool), EncdictError> {
        if i >= seg.len {
            return Err(EncdictError::CorruptDictionary("code out of range"));
        }
        if let Some((colid, part, gen)) = tag {
            if let Some(pt) = cache.get(&(colid, part, gen, i as u32)) {
                env.count_cache_hit();
                return Ok((pt.clone(), true));
            }
        }
        let entry = env.load(seg.head, i * HEAD_ENTRY_BYTES, HEAD_ENTRY_BYTES);
        let offset = u64::from_le_bytes(entry[..8].try_into().unwrap()) as usize;
        let clen = u32::from_le_bytes(entry[8..12].try_into().unwrap()) as usize;
        if offset + clen > seg.tail.len() {
            return Err(EncdictError::CorruptDictionary("tail offset out of range"));
        }
        let ct = env.load(seg.tail, offset, clen);
        let pt = pae.decrypt_bytes(ct, crate::build::DICT_VALUE_AAD)?;
        if let Some((colid, part, gen)) = tag {
            env.count_cache_miss();
            cache.insert(env, (colid, part, gen, i as u32), pt.clone());
        }
        Ok((pt, false))
    }

    fn aggregate(
        &mut self,
        env: &mut TrustedEnv,
        req: AggregateRequest<'_>,
    ) -> Result<AggregateReply, EncdictError> {
        let mut bytes_tracked = 0usize;
        let result = self.aggregate_inner(env, &req, &mut bytes_tracked);
        env.track_free(bytes_tracked);
        result
    }

    /// Decrypts one join side's distinct key codes into per-partition
    /// plaintext key tables — the same batched `DecryptValue` loop the
    /// aggregate path uses, one decryption per distinct code.
    fn bridge_side_keys(
        value_cache: &mut ValueCache,
        env: &mut TrustedEnv,
        side: &JoinSideData<'_>,
        values_decrypted: &mut usize,
        bytes_tracked: &mut usize,
    ) -> Result<Vec<Vec<Vec<u8>>>, EncdictError> {
        let pae = match side.col_name {
            Some(col) => Some(Self::column_pae(env, side.table_name, col)?),
            None => None,
        };
        let mut tables = Vec::with_capacity(side.parts.len());
        for part in &side.parts {
            match (part, &pae) {
                (
                    JoinKeyData::Encrypted {
                        main,
                        delta,
                        codes,
                        cache,
                    },
                    Some(pae),
                ) => {
                    let tag = match (cache, side.col_name) {
                        (Some((p, e)), Some(col)) => {
                            Some((value_cache.col_id(side.table_name, col), *p, *e))
                        }
                        _ => None,
                    };
                    let mut table = Vec::with_capacity(codes.len());
                    for &code in *codes {
                        let (pt, hit) = if (code as usize) < main.len {
                            let t = tag.map(|(c, p, e)| (c, p, e * 2));
                            Self::read_segment_entry(
                                value_cache,
                                env,
                                *main,
                                pae,
                                t,
                                code as usize,
                            )?
                        } else {
                            let t = tag.map(|(c, p, e)| (c, p, e * 2 + 1));
                            Self::read_segment_entry(
                                value_cache,
                                env,
                                *delta,
                                pae,
                                t,
                                code as usize - main.len,
                            )?
                        };
                        if !hit {
                            *values_decrypted += 1;
                            *bytes_tracked += pt.len();
                            env.track_alloc(pt.len());
                        }
                        table.push(pt);
                    }
                    tables.push(table);
                }
                (JoinKeyData::Plain { values }, None) => tables.push(values.to_vec()),
                _ => {
                    return Err(EncdictError::CorruptDictionary(
                        "join-key data does not match its declared protection",
                    ))
                }
            }
        }
        Ok(tables)
    }

    fn join_bridge(
        &mut self,
        env: &mut TrustedEnv,
        req: JoinBridgeRequest<'_>,
    ) -> Result<JoinBridgeReply, EncdictError> {
        let mut bytes_tracked = 0usize;
        let result = self.join_bridge_inner(env, &req, &mut bytes_tracked);
        env.track_free(bytes_tracked);
        result
    }

    fn join_bridge_inner(
        &mut self,
        env: &mut TrustedEnv,
        req: &JoinBridgeRequest<'_>,
        bytes_tracked: &mut usize,
    ) -> Result<JoinBridgeReply, EncdictError> {
        let mut values_decrypted = 0usize;
        let left = Self::bridge_side_keys(
            &mut self.value_cache,
            env,
            &req.left,
            &mut values_decrypted,
            bytes_tracked,
        )?;
        let right = Self::bridge_side_keys(
            &mut self.value_cache,
            env,
            &req.right,
            &mut values_decrypted,
            bytes_tracked,
        )?;
        // Ids are assigned after an in-enclave shuffle, so the numbering
        // carries no key-order information — crucial for rotated/unsorted
        // kinds whose dictionaries hide order.
        use rand::seq::SliceRandom;
        let (left, right, bridge_entries) =
            bridge_key_tables(&left, &right, |m| m.shuffle(&mut self.rng));
        Ok(JoinBridgeReply {
            left,
            right,
            bridge_entries,
            values_decrypted,
        })
    }

    fn aggregate_inner(
        &mut self,
        env: &mut TrustedEnv,
        req: &AggregateRequest<'_>,
        bytes_tracked: &mut usize,
    ) -> Result<AggregateReply, EncdictError> {
        // One key per referenced encrypted column, shared by every
        // partition (partitions of a table are protected by the same
        // column keys).
        let mut paes: Vec<Option<Pae>> = Vec::with_capacity(req.col_names.len());
        for name in &req.col_names {
            paes.push(match name {
                Some(col) => Some(Self::column_pae(env, req.table_name, col)?),
                None => None,
            });
        }
        // Fold every partition into per-group partial aggregates,
        // decrypting each partition's distinct touched codes exactly once
        // (batched decryption), and merge the partials in the trusted
        // core.
        let mut partials = crate::aggregate::GroupPartials::new();
        let mut values_decrypted = 0usize;
        for part in &req.parts {
            if part.columns.len() != req.col_names.len() {
                return Err(EncdictError::CorruptDictionary(
                    "partition column arity mismatch",
                ));
            }
            let mut tables: Vec<Vec<Vec<u8>>> = Vec::with_capacity(part.columns.len());
            for ((col, pae), name) in part.columns.iter().zip(&paes).zip(&req.col_names) {
                match (col, pae) {
                    (
                        AggColumnData::Encrypted {
                            main,
                            delta,
                            codes,
                            cache,
                        },
                        Some(pae),
                    ) => {
                        let tag = match (cache, name) {
                            (Some((p, e)), Some(col_name)) => {
                                Some((self.value_cache.col_id(req.table_name, col_name), *p, *e))
                            }
                            _ => None,
                        };
                        let mut table = Vec::with_capacity(codes.len());
                        for &code in *codes {
                            let (pt, hit) = if (code as usize) < main.len {
                                let t = tag.map(|(c, p, e)| (c, p, e * 2));
                                Self::read_segment_entry(
                                    &mut self.value_cache,
                                    env,
                                    *main,
                                    pae,
                                    t,
                                    code as usize,
                                )?
                            } else {
                                let t = tag.map(|(c, p, e)| (c, p, e * 2 + 1));
                                Self::read_segment_entry(
                                    &mut self.value_cache,
                                    env,
                                    *delta,
                                    pae,
                                    t,
                                    code as usize - main.len,
                                )?
                            };
                            if !hit {
                                values_decrypted += 1;
                                *bytes_tracked += pt.len();
                                env.track_alloc(pt.len());
                            }
                            table.push(pt);
                        }
                        tables.push(table);
                    }
                    (AggColumnData::Plain { values }, None) => tables.push(values.to_vec()),
                    _ => {
                        return Err(EncdictError::CorruptDictionary(
                            "column data does not match its declared protection",
                        ))
                    }
                }
            }
            let mut partial = crate::aggregate::GroupPartials::new();
            partial.accumulate(&tables, part.tuples, req.plan)?;
            partials.merge(partial);
        }
        let rows = partials.finalize(req.plan)?;
        // Wrap each plaintext cell for the untrusted realm: values derived
        // from an encrypted column leave the enclave only re-encrypted
        // under that column's key with a fresh IV.
        let out = rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .zip(&req.plan.items)
                    .map(|(value, item)| {
                        let source = match *item {
                            crate::aggregate::OutputItem::Group(i) => Some(req.plan.group_cols[i]),
                            crate::aggregate::OutputItem::Agg(j) => req.plan.aggregates[j].col,
                        };
                        match source.and_then(|c| paes[c].as_ref()) {
                            Some(pae) => AggCell::Encrypted(
                                pae.encrypt_with_rng(
                                    &mut self.rng,
                                    &value,
                                    crate::build::DICT_VALUE_AAD,
                                )
                                .into_bytes(),
                            ),
                            None => AggCell::Plain(value),
                        }
                    })
                    .collect()
            })
            .collect();
        Ok(AggregateReply {
            rows: out,
            values_decrypted,
        })
    }
}

impl Default for DictLogic {
    fn default() -> Self {
        Self::new()
    }
}

impl DictLogic {
    /// Dispatches one non-batch call. A nested [`DictCall::Batch`] is
    /// rejected: batching composes at the scheduler, never recursively
    /// inside the enclave (unbounded recursion on the trusted stack).
    fn dispatch_one(&mut self, env: &mut TrustedEnv, call: DictCall<'_>) -> DictReply {
        match call {
            DictCall::Search(req) => DictReply::Search(self.search(env, req)),
            DictCall::Reencrypt(req) => DictReply::Reencrypted(self.reencrypt(env, req)),
            DictCall::Merge(req) => DictReply::Merged(self.merge(env, req)),
            DictCall::Aggregate(req) => DictReply::Aggregated(self.aggregate(env, req)),
            DictCall::JoinBridge(req) => DictReply::Bridged(self.join_bridge(env, req)),
            DictCall::Batch(_) => DictReply::Search(Err(EncdictError::CorruptDictionary(
                "nested batch call rejected",
            ))),
        }
    }
}

impl EnclaveLogic for DictLogic {
    type Call<'a> = DictCall<'a>;
    type Reply = DictReply;

    fn code_identity(&self) -> &'static [u8] {
        // The measured "code": a stable identity string for the dictionary
        // search enclave version.
        b"encdbdb/dict-enclave/v1"
    }

    fn dispatch(&mut self, env: &mut TrustedEnv, call: DictCall<'_>) -> DictReply {
        match call {
            DictCall::Batch(calls) => {
                // One transition, many sub-calls: snapshot the counters
                // around each sub-call so every reply carries exactly its
                // own untrusted traffic (the batched analogue of the
                // host-side capture-under-lock the ledger relies on).
                let mut items = Vec::with_capacity(calls.len());
                for sub in calls {
                    let before = env.counters();
                    let reply = self.dispatch_one(env, sub);
                    let after = env.counters();
                    items.push(BatchItemReply {
                        reply,
                        untrusted_loads: after.untrusted_loads - before.untrusted_loads,
                        untrusted_bytes: after.untrusted_bytes - before.untrusted_bytes,
                        cache_hits: after.cache_hits - before.cache_hits,
                        cache_misses: after.cache_misses - before.cache_misses,
                    });
                }
                DictReply::Batch(items)
            }
            other => self.dispatch_one(env, other),
        }
    }
}

/// Host-side handle to the dictionary enclave.
///
/// # Example
///
/// ```
/// use colstore::column::Column;
/// use encdbdb_crypto::hkdf::derive_column_key;
/// use encdbdb_crypto::Key128;
/// use encdict::build::{build_encrypted, BuildParams};
/// use encdict::enclave_ops::DictEnclave;
/// use encdict::kind::EdKind;
/// use encdict::range::{EncryptedRange, RangeQuery};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let skdb = Key128::from_bytes([9; 16]);
/// let params = BuildParams { table_name: "t".into(), col_name: "c".into(), bs_max: 10 };
/// let sk_d = derive_column_key(&skdb, "t", "c");
///
/// let col = Column::from_strs("c", 12, ["Hans", "Jessica", "Archie"]).unwrap();
/// let (dict, _av) = build_encrypted(&col, EdKind::Ed1, &params, &sk_d, &mut rng).unwrap();
///
/// let mut enclave = DictEnclave::with_seed(2);
/// enclave.provision_direct(skdb);
///
/// let pae = encdbdb_crypto::Pae::new(&sk_d);
/// let range = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::between("Archie", "Hans"));
/// let result = enclave.search(&dict, &range).unwrap();
/// assert_eq!(result.match_count(), 2); // Archie, Hans
/// ```
#[derive(Debug)]
pub struct DictEnclave {
    inner: Enclave<DictLogic>,
}

impl DictEnclave {
    /// Creates the enclave with an OS-seeded trusted RNG.
    pub fn new() -> Self {
        DictEnclave {
            inner: Enclave::new(DictLogic::new()),
        }
    }

    /// Creates the enclave with a deterministic trusted RNG.
    pub fn with_seed(seed: u64) -> Self {
        DictEnclave {
            inner: Enclave::new(DictLogic::with_seed(seed)),
        }
    }

    /// Access to the underlying simulated enclave (attestation, counters).
    pub fn enclave(&self) -> &Enclave<DictLogic> {
        &self.inner
    }

    /// Mutable access to the underlying simulated enclave.
    pub fn enclave_mut(&mut self) -> &mut Enclave<DictLogic> {
        &mut self.inner
    }

    /// Installs `SK_DB` directly (trusted-setup variant, §4.2).
    pub fn provision_direct(&mut self, skdb: encdbdb_crypto::Key128) {
        self.inner.provision_key_direct(skdb);
    }

    /// Performs one dictionary search — exactly one ECALL.
    ///
    /// # Errors
    ///
    /// Returns [`EncdictError::KeyNotProvisioned`] before provisioning,
    /// [`EncdictError::Crypto`] on tampered inputs.
    pub fn search(
        &mut self,
        dict: &EncryptedDictionary,
        range: &EncryptedRange,
    ) -> Result<DictSearchResult, EncdictError> {
        let mut results = self.search_multi(dict, std::slice::from_ref(range), None)?;
        Ok(results.pop().expect("one result per range"))
    }

    /// Searches a whole disjunction (`IN (...)` / multi-range filter) in a
    /// single ECALL — one result per range, in request order. `cache`
    /// enables the in-enclave decrypted-value cache for this store
    /// generation (see [`CacheTag`]).
    ///
    /// # Errors
    ///
    /// As [`DictEnclave::search`].
    pub fn search_multi(
        &mut self,
        dict: &EncryptedDictionary,
        ranges: &[EncryptedRange],
        cache: Option<CacheTag>,
    ) -> Result<Vec<DictSearchResult>, EncdictError> {
        let req = SearchRequest::for_dictionary_multi(dict, ranges, cache);
        match self.inner.ecall(DictCall::Search(req)) {
            DictReply::Search(r) => r,
            _ => unreachable!("search call returns search reply"),
        }
    }

    /// Re-encrypts an incoming value for a delta-store insert — one ECALL.
    ///
    /// # Errors
    ///
    /// As [`DictEnclave::search`].
    pub fn reencrypt(
        &mut self,
        table_name: &str,
        col_name: &str,
        ciphertext: &[u8],
    ) -> Result<Ciphertext, EncdictError> {
        let req = ReencryptRequest {
            table_name,
            col_name,
            ciphertext,
        };
        match self.inner.ecall(DictCall::Reencrypt(req)) {
            DictReply::Reencrypted(r) => {
                Ok(Ciphertext::from_bytes(r?).expect("enclave produced a well-formed ciphertext"))
            }
            _ => unreachable!("reencrypt call returns reencrypt reply"),
        }
    }

    /// Evaluates a grouped aggregation over a ValueID histogram — one
    /// ECALL per query, decrypting each distinct touched value once.
    ///
    /// # Errors
    ///
    /// As [`DictEnclave::search`], plus [`EncdictError::Aggregate`] for
    /// SUM/AVG over non-numeric values.
    pub fn aggregate(&mut self, req: AggregateRequest<'_>) -> Result<AggregateReply, EncdictError> {
        match self.inner.ecall(DictCall::Aggregate(req)) {
            DictReply::Aggregated(r) => r,
            _ => unreachable!("aggregate call returns aggregate reply"),
        }
    }

    /// Builds the opaque join-key bridge for an equi-join — one ECALL per
    /// query, decrypting each distinct join-key code at most once per
    /// side.
    ///
    /// # Errors
    ///
    /// As [`DictEnclave::search`].
    pub fn join_bridge(
        &mut self,
        req: JoinBridgeRequest<'_>,
    ) -> Result<JoinBridgeReply, EncdictError> {
        match self.inner.ecall(DictCall::JoinBridge(req)) {
            DictReply::Bridged(r) => r,
            _ => unreachable!("join-bridge call returns bridge reply"),
        }
    }

    /// Merges a delta store into a freshly rebuilt main store — one ECALL.
    ///
    /// # Errors
    ///
    /// As [`DictEnclave::search`].
    pub fn merge(
        &mut self,
        req: MergeRequest<'_>,
    ) -> Result<(EncryptedDictionary, colstore::dictionary::AttributeVector), EncdictError> {
        match self.inner.ecall(DictCall::Merge(req)) {
            DictReply::Merged(r) => r,
            _ => unreachable!("merge call returns merge reply"),
        }
    }

    /// Executes several coalesced sub-calls in a **single** enclave
    /// transition (the cross-session ECALL batching entry point). Replies
    /// come back in request order, each tagged with the counter deltas its
    /// own sub-call produced, so the host can attribute untrusted traffic
    /// per request. Never fails as a whole: per-sub-call errors are inside
    /// each [`BatchItemReply::reply`].
    pub fn batch(&mut self, calls: Vec<DictCall<'_>>) -> Vec<BatchItemReply> {
        match self.inner.ecall(DictCall::Batch(calls)) {
            DictReply::Batch(items) => items,
            _ => unreachable!("batch call returns batch reply"),
        }
    }
}

impl Default for DictEnclave {
    fn default() -> Self {
        Self::new()
    }
}

/// Helper: encrypts a plaintext value the way the proxy does for inserts.
pub fn encrypt_value_for_column<R: RngCore + ?Sized>(
    pae: &Pae,
    rng: &mut R,
    value: &[u8],
) -> Ciphertext {
    pae.encrypt_with_rng(rng, value, crate::build::DICT_VALUE_AAD)
}

/// Helper: decrypts a dictionary-value ciphertext (proxy side, step 14).
///
/// # Errors
///
/// Returns [`EncdictError::Crypto`] on tampering or a wrong key.
pub fn decrypt_column_value(pae: &Pae, ciphertext: &[u8]) -> Result<Vec<u8>, EncdictError> {
    Ok(pae.decrypt_bytes(ciphertext, crate::build::DICT_VALUE_AAD)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_encrypted, BuildParams};
    use crate::range::RangeQuery;
    use colstore::column::Column;
    use encdbdb_crypto::Key128;

    fn setup(
        kind: EdKind,
        values: &[&str],
        seed: u64,
    ) -> (DictEnclave, EncryptedDictionary, Pae, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let skdb = Key128::from_bytes([9; 16]);
        let sk_d = derive_column_key(&skdb, "t", "c");
        let params = BuildParams {
            table_name: "t".into(),
            col_name: "c".into(),
            bs_max: 3,
        };
        let col = Column::from_strs("c", 12, values.iter().copied()).unwrap();
        let (dict, _) = build_encrypted(&col, kind, &params, &sk_d, &mut rng).unwrap();
        let mut enclave = DictEnclave::with_seed(seed + 1);
        enclave.provision_direct(skdb);
        (enclave, dict, Pae::new(&sk_d), rng)
    }

    #[test]
    fn search_works_for_all_nine_kinds() {
        let values = ["Hans", "Jessica", "Archie", "Ella", "Jessica", "Jessica"];
        for (i, kind) in EdKind::ALL.iter().enumerate() {
            let (mut enclave, dict, pae, mut rng) = setup(*kind, &values, 100 + i as u64);
            let range =
                EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::between("Archie", "Hans"));
            let result = enclave.search(&dict, &range).unwrap();
            // Matching plaintexts: Hans, Archie, Ella → 3 dictionary entries
            // for revealing kinds; possibly more for smoothing/hiding, but
            // the *distinct plaintext coverage* is what we check below.
            let count = result.match_count();
            assert!(count >= 3, "{kind}: {count} matches");
            // Verify every returned ValueID decrypts into the range.
            for vid in result.to_vid_list() {
                let pt = decrypt_column_value(&pae, dict.ciphertext(vid as usize)).unwrap();
                assert!(
                    RangeQuery::between("Archie", "Hans").contains(&pt),
                    "{kind}: vid {vid} -> {:?} outside range",
                    String::from_utf8_lossy(&pt)
                );
            }
        }
    }

    #[test]
    fn one_ecall_per_search() {
        let (mut enclave, dict, pae, mut rng) = setup(EdKind::Ed1, &["a", "b", "c"], 7);
        enclave.enclave_mut().reset_counters();
        let range = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::equals("b"));
        let _ = enclave.search(&dict, &range).unwrap();
        assert_eq!(enclave.enclave().counters().ecalls, 1);
    }

    #[test]
    fn trusted_heap_is_constant_in_dict_size() {
        // The paper: "the required enclave memory is independent of |D|".
        let small: Vec<String> = (0..64).map(|i| format!("v{i:04}")).collect();
        let large: Vec<String> = (0..8192).map(|i| format!("v{i:04}")).collect();
        let mut peaks = Vec::new();
        for values in [&small, &large] {
            let refs: Vec<&str> = values.iter().map(String::as_str).collect();
            let (mut enclave, dict, pae, mut rng) = setup(EdKind::Ed1, &refs, 8);
            enclave.enclave_mut().reset_heap_peak();
            let range =
                EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::between("v0001", "v0100"));
            let _ = enclave.search(&dict, &range).unwrap();
            peaks.push(enclave.enclave().trusted_heap_peak());
        }
        assert_eq!(peaks[0], peaks[1], "heap peak must not grow with |D|");
    }

    #[test]
    fn untrusted_loads_are_logarithmic_for_sorted() {
        let values: Vec<String> = (0..4096).map(|i| format!("v{i:05}")).collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let (mut enclave, dict, pae, mut rng) = setup(EdKind::Ed1, &refs, 9);
        enclave.enclave_mut().reset_counters();
        let range = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::equals("v00042"));
        let _ = enclave.search(&dict, &range).unwrap();
        let loads = enclave.enclave().counters().untrusted_loads;
        // Each entry read = head load + tail load; two binary searches.
        assert!(loads <= 2 * 2 * 13, "loads = {loads}");
    }

    #[test]
    fn untrusted_loads_are_linear_for_unsorted() {
        let values: Vec<String> = (0..512).map(|i| format!("v{i:05}")).collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let (mut enclave, dict, pae, mut rng) = setup(EdKind::Ed3, &refs, 10);
        enclave.enclave_mut().reset_counters();
        let range = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::equals("v00042"));
        let _ = enclave.search(&dict, &range).unwrap();
        let loads = enclave.enclave().counters().untrusted_loads;
        assert_eq!(loads, 2 * 512, "linear scan loads head+tail per entry");
    }

    #[test]
    fn unprovisioned_enclave_refuses() {
        let mut rng = StdRng::seed_from_u64(11);
        let skdb = Key128::from_bytes([9; 16]);
        let sk_d = derive_column_key(&skdb, "t", "c");
        let col = Column::from_strs("c", 12, ["a"]).unwrap();
        let params = BuildParams {
            table_name: "t".into(),
            col_name: "c".into(),
            bs_max: 3,
        };
        let (dict, _) = build_encrypted(&col, EdKind::Ed1, &params, &sk_d, &mut rng).unwrap();
        let mut enclave = DictEnclave::with_seed(12);
        let range = EncryptedRange::encrypt(&Pae::new(&sk_d), &mut rng, &RangeQuery::equals("a"));
        assert_eq!(
            enclave.search(&dict, &range).unwrap_err(),
            EncdictError::KeyNotProvisioned
        );
    }

    #[test]
    fn tampered_dictionary_rejected() {
        let (mut enclave, dict, pae, mut rng) = setup(EdKind::Ed3, &["a", "b"], 13);
        // Corrupt a tail byte by rebuilding the dictionary with a flipped
        // ciphertext (dictionary internals are immutable from outside, so
        // tamper via the public parts accessor path: clone bytes).
        let mut tampered_tail = dict.tail_mem();
        let _ = &mut tampered_tail; // UntrustedMemory is read-only; rebuild instead.
        let mut bytes_head = Vec::new();
        for i in 0..dict.len() {
            let ct = dict.ciphertext(i);
            crate::dict::write_head_entry(&mut bytes_head, 0, ct.len() as u32);
        }
        // Simpler: flip a byte in a ciphertext copy and decrypt directly.
        let mut ct = dict.ciphertext(0).to_vec();
        ct[5] ^= 1;
        assert!(decrypt_column_value(&pae, &ct).is_err());
        // And a tampered range is rejected end-to-end.
        let mut range = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::equals("a"));
        let mut raw = range.tau_s.as_bytes().to_vec();
        raw[3] ^= 1;
        range.tau_s = Ciphertext::from_bytes(raw).unwrap();
        assert!(matches!(
            enclave.search(&dict, &range).unwrap_err(),
            EncdictError::Crypto(_)
        ));
    }

    #[test]
    fn wrong_column_metadata_fails_decryption() {
        // A dictionary re-labelled with a different column name derives a
        // different SK_D inside the enclave, so decryption must fail —
        // values are cryptographically bound to their column.
        let (mut enclave, dict, _, mut rng) = setup(EdKind::Ed1, &["a", "b"], 14);
        let skdb = Key128::from_bytes([9; 16]);
        let other_pae = Pae::new(&derive_column_key(&skdb, "t", "other"));
        let range = EncryptedRange::encrypt(&other_pae, &mut rng, &RangeQuery::equals("a"));
        assert!(enclave.search(&dict, &range).is_err());
    }

    #[test]
    fn join_bridge_matches_equal_keys_once_per_distinct_code() {
        // Left ED1 dictionary {a,b,c}, right ED9-ish per-row entries with
        // duplicates {b,b,d}: the bridge must connect exactly the key 'b',
        // decrypting each distinct code once per side.
        let values_l = ["a", "b", "c"];
        let values_r = ["b", "b", "d"];
        let mut rng = StdRng::seed_from_u64(31);
        let skdb = Key128::from_bytes([9; 16]);
        let sk_l = derive_column_key(&skdb, "t", "kl");
        let sk_r = derive_column_key(&skdb, "u", "kr");
        let params_l = BuildParams {
            table_name: "t".into(),
            col_name: "kl".into(),
            bs_max: 3,
        };
        let params_r = BuildParams {
            table_name: "u".into(),
            col_name: "kr".into(),
            bs_max: 3,
        };
        let col_l = Column::from_strs("kl", 8, values_l.iter().copied()).unwrap();
        let col_r = Column::from_strs("kr", 8, values_r.iter().copied()).unwrap();
        let (dict_l, _) = build_encrypted(&col_l, EdKind::Ed1, &params_l, &sk_l, &mut rng).unwrap();
        let (dict_r, _) = build_encrypted(&col_r, EdKind::Ed9, &params_r, &sk_r, &mut rng).unwrap();
        let mut enclave = DictEnclave::with_seed(32);
        enclave.provision_direct(skdb);
        enclave.enclave_mut().reset_counters();

        let empty = SegmentRef {
            head: UntrustedMemory::new(&[]),
            tail: UntrustedMemory::new(&[]),
            len: 0,
        };
        let codes_l: Vec<u32> = (0..dict_l.len() as u32).collect();
        let codes_r: Vec<u32> = (0..dict_r.len() as u32).collect();
        let reply = enclave
            .join_bridge(JoinBridgeRequest {
                left: JoinSideData {
                    table_name: "t",
                    col_name: Some("kl"),
                    parts: vec![JoinKeyData::Encrypted {
                        main: dict_l.segment_ref(),
                        delta: empty,
                        codes: &codes_l,
                        cache: None,
                    }],
                },
                right: JoinSideData {
                    table_name: "u",
                    col_name: Some("kr"),
                    parts: vec![JoinKeyData::Encrypted {
                        main: dict_r.segment_ref(),
                        delta: empty,
                        codes: &codes_r,
                        cache: None,
                    }],
                },
            })
            .unwrap();
        // One ECALL; one decrypt per distinct code per side.
        assert_eq!(enclave.enclave().counters().ecalls, 1);
        assert_eq!(reply.values_decrypted, dict_l.len() + dict_r.len());
        // Exactly one key ('b') bridges; it links matching codes on both
        // sides and nothing else.
        assert_eq!(reply.bridge_entries, 1);
        let left_ids: Vec<_> = reply.left[0].iter().filter_map(|x| *x).collect();
        assert_eq!(left_ids, vec![0]);
        // ED9 shuffles entries, so locate 'b' codes by decrypting.
        let pae_r = Pae::new(&sk_r);
        let b_codes: Vec<usize> = (0..dict_r.len())
            .filter(|&i| decrypt_column_value(&pae_r, dict_r.ciphertext(i)).unwrap() == b"b")
            .collect();
        assert_eq!(b_codes.len(), 2, "ED9 keeps one entry per occurrence");
        for (i, id) in reply.right[0].iter().enumerate() {
            assert_eq!(id.is_some(), b_codes.contains(&i), "code {i}");
        }
    }

    #[test]
    fn reencrypt_preserves_plaintext_fresh_iv() {
        let (mut enclave, _, pae, mut rng) = setup(EdKind::Ed9, &["a"], 15);
        let original = encrypt_value_for_column(&pae, &mut rng, b"delta-value");
        let fresh = enclave.reencrypt("t", "c", original.as_bytes()).unwrap();
        assert_ne!(original.as_bytes(), fresh.as_bytes(), "IV must be fresh");
        assert_eq!(
            decrypt_column_value(&pae, fresh.as_bytes()).unwrap(),
            b"delta-value"
        );
    }
}
