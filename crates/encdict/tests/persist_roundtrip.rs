//! Property tests: dictionary persistence round-trips for durability.
//!
//! The durable server (DESIGN.md §12) rests every published epoch on
//! `persist::to_bytes` / `from_bytes` (encrypted columns) and
//! `plain_to_bytes` / `plain_from_bytes` (PLAIN columns). These proptests
//! pin the round-trip for arbitrary column contents across all nine
//! dictionary kinds: the reloaded state is byte-for-byte re-serializable
//! and answers enclave searches identically to the original.

use colstore::column::Column;
use encdbdb_crypto::hkdf::derive_column_key;
use encdbdb_crypto::{Key128, Pae};
use encdict::build::{build_encrypted, build_plain, BuildParams};
use encdict::persist;
use encdict::{DictEnclave, EdKind, EncryptedRange, RangeQuery};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn values_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-h]{0,6}", 0..40)
}

fn params() -> BuildParams {
    BuildParams {
        table_name: "t".into(),
        col_name: "c".into(),
        bs_max: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary encrypted dictionary states survive `to_bytes` →
    /// `from_bytes` for every ED kind: the attribute vector is identical,
    /// the structural fields match, and re-serializing the reloaded state
    /// reproduces the exact original bytes (so a snapshot of a snapshot is
    /// a fixed point).
    #[test]
    fn encrypted_roundtrip_all_kinds(values in values_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let skdb = Key128::from_bytes([6; 16]);
        let sk_d = derive_column_key(&skdb, "t", "c");
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        for kind in EdKind::ALL {
            let (dict, av) = build_encrypted(&col, kind, &params(), &sk_d, &mut rng).unwrap();
            let bytes = persist::to_bytes(&dict, &av);
            let (back, back_av) = persist::from_bytes(&bytes).unwrap();
            prop_assert_eq!(back.kind(), dict.kind());
            prop_assert_eq!(back.table_name(), dict.table_name());
            prop_assert_eq!(back.col_name(), dict.col_name());
            prop_assert_eq!(back.max_len(), dict.max_len());
            prop_assert_eq!(back.len(), dict.len());
            prop_assert_eq!(back_av.as_slice(), av.as_slice());
            prop_assert_eq!(persist::to_bytes(&back, &back_av), bytes);
        }
    }

    /// The reloaded dictionary answers enclave range searches exactly like
    /// the original — persistence must not perturb a single ciphertext.
    #[test]
    fn reloaded_dictionary_searches_identically(values in values_strategy(),
                                                lo in "[a-h]{0,3}", hi in "[a-h]{0,3}") {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut rng = StdRng::seed_from_u64(11);
        let skdb = Key128::from_bytes([6; 16]);
        let sk_d = derive_column_key(&skdb, "t", "c");
        let pae = Pae::new(&sk_d);
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        for kind in EdKind::ALL {
            let (dict, av) = build_encrypted(&col, kind, &params(), &sk_d, &mut rng).unwrap();
            let bytes = persist::to_bytes(&dict, &av);
            let (back, _back_av) = persist::from_bytes(&bytes).unwrap();

            let mut enclave = DictEnclave::with_seed(kind.number() as u64 + 50);
            enclave.provision_direct(skdb.clone());
            let tau = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::between(lo.as_str(), hi.as_str()));
            let original = enclave.search(&dict, &tau).unwrap();
            let reloaded = enclave.search(&back, &tau).unwrap();
            prop_assert_eq!(reloaded.match_count(), original.match_count());
        }
    }

    /// PLAIN columns round-trip through `plain_to_bytes` / `plain_from_bytes`
    /// with every value and the attribute vector preserved verbatim.
    #[test]
    fn plain_roundtrip(values in values_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        let (dict, av) = build_plain(&col, EdKind::Ed1, &params(), &mut rng).unwrap();
        let bytes = persist::plain_to_bytes(&dict, &av);
        let (back, back_av) = persist::plain_from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), dict.len());
        prop_assert_eq!(back.max_len(), dict.max_len());
        for i in 0..dict.len() {
            prop_assert_eq!(back.value(i), dict.value(i));
        }
        prop_assert_eq!(back_av.as_slice(), av.as_slice());
        prop_assert_eq!(persist::plain_to_bytes(&back, &back_av), bytes);
    }

    /// Truncating a serialized dictionary at any boundary is rejected
    /// structurally — a partial snapshot never loads as a smaller one.
    #[test]
    fn truncated_blobs_are_rejected(values in values_strategy(), cut_frac in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(3);
        let skdb = Key128::from_bytes([6; 16]);
        let sk_d = derive_column_key(&skdb, "t", "c");
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        let (dict, av) = build_encrypted(&col, EdKind::Ed5, &params(), &sk_d, &mut rng).unwrap();
        let bytes = persist::to_bytes(&dict, &av);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(persist::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
