//! Failure injection: corrupted untrusted storage must surface as errors,
//! never as wrong results or panics inside the enclave.

use colstore::column::Column;
use colstore::delta::ValidityVector;
use encdbdb_crypto::hkdf::derive_column_key;
use encdbdb_crypto::{Key128, Pae};
use encdict::build::{build_encrypted, BuildParams};
use encdict::dynamic::{merge_delta, search_combined, EncryptedDeltaStore};
use encdict::enclave_ops::encrypt_value_for_column;
use encdict::persist;
use encdict::{DictEnclave, EdKind, EncryptedRange, RangeQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture(
    kind: EdKind,
) -> (
    DictEnclave,
    encdict::EncryptedDictionary,
    colstore::dictionary::AttributeVector,
    Pae,
    StdRng,
) {
    let mut rng = StdRng::seed_from_u64(kind.number() as u64);
    let skdb = Key128::from_bytes([6; 16]);
    let sk_d = derive_column_key(&skdb, "t", "c");
    let col = Column::from_strs("c", 8, ["d", "a", "c", "b", "a"]).unwrap();
    let params = BuildParams {
        table_name: "t".into(),
        col_name: "c".into(),
        bs_max: 2,
    };
    let (dict, av) = build_encrypted(&col, kind, &params, &sk_d, &mut rng).unwrap();
    let mut enclave = DictEnclave::with_seed(kind.number() as u64 + 100);
    enclave.provision_direct(skdb);
    (enclave, dict, av, Pae::new(&sk_d), rng)
}

/// Flip bytes across the serialized dictionary; either the deserializer
/// rejects the blob, or the enclave's authenticated decryption rejects the
/// search — never a silent wrong answer or a panic.
#[test]
fn bit_flips_never_panic_or_lie() {
    for kind in [EdKind::Ed1, EdKind::Ed2, EdKind::Ed3] {
        let (mut enclave, dict, av, pae, mut rng) = fixture(kind);
        let blob = persist::to_bytes(&dict, &av);
        let query = RangeQuery::between("a", "d");
        let tau = EncryptedRange::encrypt(&pae, &mut rng, &query);
        let baseline = enclave.search(&dict, &tau).unwrap().match_count();
        assert!(baseline >= 4, "baseline sanity for {kind}");

        for pos in (0..blob.len()).step_by(7) {
            let mut bad = blob.clone();
            bad[pos] ^= 0x20;
            let Ok((bad_dict, _bad_av)) = persist::from_bytes(&bad) else {
                continue; // structural rejection: good.
            };
            match enclave.search(&bad_dict, &tau) {
                Err(_) => {} // authenticated decryption caught it: good.
                Ok(result) => {
                    // The flip may have landed in AV bytes, which the
                    // dictionary search never reads; then the dictionary
                    // result must equal the baseline.
                    assert_eq!(
                        result.match_count(),
                        baseline,
                        "{kind}: silent result change from flip at {pos}"
                    );
                }
            }
        }
    }
}

/// A head entry whose length points past the tail must produce
/// CorruptDictionary (bounds check), not a panic.
#[test]
fn out_of_range_head_offset_detected() {
    let (mut enclave, dict, av, pae, mut rng) = fixture(EdKind::Ed3);
    let blob = persist::to_bytes(&dict, &av);
    // First ciphertext length prefix position: MAGIC(8) + kind(1) +
    // table "t" (8+1) + col "c" (8+1) + max_len(8) + len(8).
    let first_len_pos = 8 + 1 + 9 + 9 + 8 + 8;
    let mut bad = blob.clone();
    bad[first_len_pos] = bad[first_len_pos].wrapping_add(200);
    if let Ok((bad_dict, _)) = persist::from_bytes(&bad) {
        let tau = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::equals("a"));
        assert!(enclave.search(&bad_dict, &tau).is_err());
    }
}

/// An ED2 dictionary stripped of its rotation offset must be rejected.
#[test]
fn missing_rotation_offset_rejected() {
    let (mut enclave, dict, av, pae, mut rng) = fixture(EdKind::Ed2);
    let blob = persist::to_bytes(&dict, &av);
    let av_bytes = 8 + av.len() * 4;
    let enc_off_len = dict.enc_rnd_offset().unwrap().len();
    let flag_pos = blob.len() - av_bytes - (8 + enc_off_len) - 1;
    assert_eq!(blob[flag_pos], 1, "flag located");
    let mut bad = Vec::new();
    bad.extend_from_slice(&blob[..flag_pos]);
    bad.push(0);
    bad.extend_from_slice(&blob[blob.len() - av_bytes..]);
    let (bad_dict, _) = persist::from_bytes(&bad).unwrap();
    let tau = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::equals("a"));
    let err = enclave.search(&bad_dict, &tau).unwrap_err();
    assert!(matches!(err, encdict::EncdictError::CorruptDictionary(_)));
}

/// A `Merge` ECALL that fails mid-merge — here because a main-store
/// ciphertext was corrupted, so the enclave's authenticated decryption
/// errors partway through reassembling the column — must leave both the
/// old main store and the delta store intact and queryable. Nothing is
/// published, nothing is reset.
#[test]
fn failed_merge_leaves_old_store_and_delta_intact() {
    let (mut enclave, dict, av, pae, mut rng) = fixture(EdKind::Ed3);
    let mut delta = EncryptedDeltaStore::new("t", "c", 8);
    for v in ["e", "f"] {
        let ct = encrypt_value_for_column(&pae, &mut rng, v.as_bytes());
        delta.insert(&mut enclave, ct.as_bytes()).unwrap();
    }
    let validity = ValidityVector::all_valid(av.len());
    let params = BuildParams {
        table_name: "t".into(),
        col_name: "c".into(),
        bs_max: 2,
    };

    // Corrupt one main ciphertext byte via the persist round-trip (the
    // dictionary's internals are immutable from outside).
    let blob = persist::to_bytes(&dict, &av);
    let mut bad = blob.clone();
    let tail_pos = 8 + 1 + 9 + 9 + 8 + 8 + 12 + 4; // inside ciphertext 0
    bad[tail_pos] ^= 0x40;
    let (bad_dict, _) = persist::from_bytes(&bad).expect("structurally intact");

    let err = merge_delta(
        &mut enclave,
        &bad_dict,
        &av,
        &validity,
        &mut delta,
        &params,
        EdKind::Ed3,
    )
    .unwrap_err();
    assert!(matches!(err, encdict::EncdictError::Crypto(_)), "{err:?}");

    // The delta was not reset by the failed merge...
    assert_eq!(delta.len(), 2);
    assert_eq!(delta.valid_len(), 2);
    // ...and the *original* (uncorrupted) store plus the delta still
    // answer combined reads correctly.
    let range = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::between("a", "f"));
    let combined = search_combined(&mut enclave, &dict, &av, &validity, &delta, &range).unwrap();
    assert_eq!(combined.main.len(), 5, "main rows a,b,c,d,a all match");
    assert_eq!(combined.delta.len(), 2, "delta rows e,f both match");

    // The same merge against the intact store succeeds — recovery needs
    // no special handling.
    let (new_dict, new_av) = merge_delta(
        &mut enclave,
        &dict,
        &av,
        &validity,
        &mut delta,
        &params,
        EdKind::Ed3,
    )
    .unwrap();
    assert!(delta.is_empty());
    assert_eq!(new_av.len(), 7);
    let range = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::between("a", "f"));
    let result = enclave.search(&new_dict, &range).unwrap();
    let rids = encdict::avsearch::search(
        &new_av,
        &result,
        new_dict.len(),
        encdict::avsearch::SetSearchStrategy::PaperLinear,
        encdict::avsearch::Parallelism::Serial,
    );
    assert_eq!(rids.len(), 7, "all merged rows match [a, f]");
}

/// A merge attempted on an enclave that was never provisioned fails with
/// `KeyNotProvisioned` and leaves the delta intact; re-running it on a
/// provisioned enclave recovers.
#[test]
fn unprovisioned_merge_enclave_fails_cleanly() {
    let (mut enclave, dict, av, pae, mut rng) = fixture(EdKind::Ed1);
    let mut delta = EncryptedDeltaStore::new("t", "c", 8);
    let ct = encrypt_value_for_column(&pae, &mut rng, b"z");
    delta.insert(&mut enclave, ct.as_bytes()).unwrap();
    let validity = ValidityVector::all_valid(av.len());
    let params = BuildParams {
        table_name: "t".into(),
        col_name: "c".into(),
        bs_max: 2,
    };

    let mut cold = DictEnclave::with_seed(999); // never provisioned
    let err = merge_delta(
        &mut cold,
        &dict,
        &av,
        &validity,
        &mut delta,
        &params,
        EdKind::Ed1,
    )
    .unwrap_err();
    assert_eq!(err, encdict::EncdictError::KeyNotProvisioned);
    assert_eq!(delta.len(), 1, "failed merge must not consume the delta");

    let (_, new_av) = merge_delta(
        &mut enclave,
        &dict,
        &av,
        &validity,
        &mut delta,
        &params,
        EdKind::Ed1,
    )
    .unwrap();
    assert_eq!(new_av.len(), 6);
    assert!(delta.is_empty());
}

/// A rotation offset re-encrypted under the wrong key is rejected before
/// any dictionary entry is touched.
#[test]
fn swapped_rotation_offset_rejected() {
    let (mut enclave, dict, av, pae, mut rng) = fixture(EdKind::Ed2);
    // Replace the offset ciphertext with one under a different key.
    let wrong_pae = Pae::new(&Key128::from_bytes([0xEE; 16]));
    let forged = wrong_pae
        .encrypt_with_rng(&mut rng, &0u64.to_le_bytes(), b"encdbdb/rot-offset/v1")
        .into_bytes();
    let blob = persist::to_bytes(&dict, &av);
    let av_bytes = 8 + av.len() * 4;
    let enc_off_len = dict.enc_rnd_offset().unwrap().len();
    let field_start = blob.len() - av_bytes - (8 + enc_off_len);
    assert_eq!(enc_off_len, forged.len());
    let mut bad = blob.clone();
    bad[field_start + 8..field_start + 8 + enc_off_len].copy_from_slice(&forged);
    let (bad_dict, _) = persist::from_bytes(&bad).unwrap();
    let tau = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::equals("a"));
    let err = enclave.search(&bad_dict, &tau).unwrap_err();
    assert!(matches!(err, encdict::EncdictError::Crypto(_)));
}
