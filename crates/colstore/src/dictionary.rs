//! Dictionary encoding: dictionaries, attribute vectors, splits.
//!
//! Paper §2.1: dictionary encoding splits a column `C` into a dictionary
//! `D` (each value of `C` present at least once; index = *ValueID*) and an
//! attribute vector `AV` replacing every value by a ValueID (index =
//! *RecordID*). Definition 1 (*split correctness*) requires
//! `∀j: D[AV[j]] = C[j]`, which [`verify_split`] checks verbatim.

use crate::column::Column;
use std::collections::HashMap;

/// Index into a [`Dictionary`] (paper: *vid*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

/// Index into an [`AttributeVector`] (paper: *rid*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u32);

/// A plaintext dictionary: arena-backed list of values indexed by ValueID.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    data: Vec<u8>,
    offsets: Vec<u64>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary {
            data: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Appends a value, returning its ValueID.
    pub fn push(&mut self, value: &[u8]) -> ValueId {
        let id = ValueId(self.len() as u32);
        self.data.extend_from_slice(value);
        self.offsets.push(self.data.len() as u64);
        id
    }

    /// Number of dictionary entries (`|D|`).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value stored at `vid`.
    ///
    /// # Panics
    ///
    /// Panics if `vid` is out of bounds.
    #[inline]
    pub fn value(&self, vid: ValueId) -> &[u8] {
        let i = vid.0 as usize;
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates over `(ValueId, value)` pairs in ValueID order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &[u8])> + '_ {
        (0..self.len()).map(move |i| (ValueId(i as u32), self.value(ValueId(i as u32))))
    }

    /// In-memory heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.data.len() + self.offsets.len() * std::mem::size_of::<u64>()
    }

    /// Sum of raw value bytes (without the offset table).
    pub fn value_bytes(&self) -> usize {
        self.data.len()
    }
}

impl<'a> FromIterator<&'a [u8]> for Dictionary {
    fn from_iter<T: IntoIterator<Item = &'a [u8]>>(iter: T) -> Self {
        let mut d = Dictionary::new();
        for v in iter {
            d.push(v);
        }
        d
    }
}

/// An attribute vector: one ValueID per record.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributeVector {
    ids: Vec<u32>,
}

impl AttributeVector {
    /// Creates an empty attribute vector.
    pub fn new() -> Self {
        AttributeVector { ids: Vec::new() }
    }

    /// Creates an attribute vector with preallocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        AttributeVector {
            ids: Vec::with_capacity(n),
        }
    }

    /// Appends a ValueID.
    #[inline]
    pub fn push(&mut self, vid: ValueId) {
        self.ids.push(vid.0);
    }

    /// Number of records (`|AV|`).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The ValueID at record `rid`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn value_id(&self, rid: RecordId) -> ValueId {
        ValueId(self.ids[rid.0 as usize])
    }

    /// Raw ValueID slice for scan loops.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.ids
    }

    /// In-memory heap footprint in bytes (`u32` per entry).
    pub fn heap_size(&self) -> usize {
        self.ids.len() * std::mem::size_of::<u32>()
    }

    /// Storage size when ValueIDs are bit-packed to the smallest of
    /// 1/2/4 bytes that can address `dict_len` values — the compressed
    /// representation the paper's Table 6 numbers assume ("a ValueID of
    /// *i* bits is sufficient to represent 2^i different values").
    pub fn packed_size(&self, dict_len: usize) -> usize {
        self.ids.len() * packed_id_width(dict_len)
    }
}

impl FromIterator<ValueId> for AttributeVector {
    fn from_iter<T: IntoIterator<Item = ValueId>>(iter: T) -> Self {
        AttributeVector {
            ids: iter.into_iter().map(|v| v.0).collect(),
        }
    }
}

/// Byte width (1, 2, 4 or 8) required to address `dict_len` entries.
pub fn packed_id_width(dict_len: usize) -> usize {
    // dict_len entries need ids 0..dict_len-1, so up to 2^8 entries fit one
    // byte, up to 2^16 two bytes, and so on.
    match dict_len as u64 {
        0..=0x100 => 1,
        0x101..=0x1_0000 => 2,
        0x1_0001..=0x1_0000_0000 => 4,
        _ => 8,
    }
}

/// Splits a column into a **lexicographically sorted**, duplicate-free
/// dictionary and the matching attribute vector — classic dictionary
/// encoding, the starting point for ED1.
pub fn split_sorted(column: &Column) -> (Dictionary, AttributeVector) {
    let mut sorted: Vec<&[u8]> = column.iter().collect();
    sorted.sort_unstable();
    sorted.dedup();
    let dict: Dictionary = sorted.iter().copied().collect();
    let index: HashMap<&[u8], u32> = sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, i as u32))
        .collect();
    let av = column.iter().map(|v| ValueId(index[v])).collect();
    (dict, av)
}

/// Splits a column into an **insertion-order**, duplicate-free dictionary
/// (first occurrence wins) and attribute vector — the layout MonetDB uses
/// for small string dictionaries (paper §5).
pub fn split_insertion_order(column: &Column) -> (Dictionary, AttributeVector) {
    let mut dict = Dictionary::new();
    let mut index: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut av = AttributeVector::with_capacity(column.len());
    for v in column.iter() {
        let id = match index.get(v) {
            Some(&i) => ValueId(i),
            None => {
                let id = dict.push(v);
                index.insert(v.to_vec(), id.0);
                id
            }
        };
        av.push(id);
    }
    (dict, av)
}

/// Checks *split correctness* (paper Definition 1):
/// `∀j ∈ [0, |AV|-1]: D[AV[j]] = C[j]`, plus the structural requirements
/// that `|AV| = |C|` and every value of `C` occurs in `D`.
pub fn verify_split(column: &Column, dict: &Dictionary, av: &AttributeVector) -> bool {
    if av.len() != column.len() {
        return false;
    }
    for j in 0..column.len() {
        let vid = av.value_id(RecordId(j as u32));
        if vid.0 as usize >= dict.len() {
            return false;
        }
        if dict.value(vid) != column.value(j) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_column() -> Column {
        // The paper's Figure 1 example.
        Column::from_strs(
            "FName",
            10,
            ["Hans", "Jessica", "Archie", "Jessica", "Jessica", "Archie"],
        )
        .unwrap()
    }

    #[test]
    fn sorted_split_matches_figure_1_semantics() {
        let col = example_column();
        let (dict, av) = split_sorted(&col);
        assert_eq!(dict.len(), 3);
        // Lexicographic: Archie < Hans < Jessica.
        assert_eq!(dict.value(ValueId(0)), b"Archie");
        assert_eq!(dict.value(ValueId(1)), b"Hans");
        assert_eq!(dict.value(ValueId(2)), b"Jessica");
        assert_eq!(av.as_slice(), &[1, 2, 0, 2, 2, 0]);
        assert!(verify_split(&col, &dict, &av));
    }

    #[test]
    fn insertion_order_split_preserves_first_occurrence() {
        let col = example_column();
        let (dict, av) = split_insertion_order(&col);
        assert_eq!(dict.value(ValueId(0)), b"Hans");
        assert_eq!(dict.value(ValueId(1)), b"Jessica");
        assert_eq!(dict.value(ValueId(2)), b"Archie");
        assert_eq!(av.as_slice(), &[0, 1, 2, 1, 1, 2]);
        assert!(verify_split(&col, &dict, &av));
    }

    #[test]
    fn verify_split_rejects_wrong_mapping() {
        let col = example_column();
        let (dict, mut av) = split_sorted(&col);
        assert!(verify_split(&col, &dict, &av));
        // Corrupt one entry.
        let ids: Vec<u32> = av.as_slice().to_vec();
        av = ids
            .iter()
            .enumerate()
            .map(|(i, &v)| if i == 2 { ValueId(1) } else { ValueId(v) })
            .collect();
        assert!(!verify_split(&col, &dict, &av));
    }

    #[test]
    fn verify_split_rejects_length_mismatch() {
        let col = example_column();
        let (dict, _) = split_sorted(&col);
        let short: AttributeVector = [ValueId(0)].into_iter().collect();
        assert!(!verify_split(&col, &dict, &short));
    }

    #[test]
    fn verify_split_rejects_out_of_range_vid() {
        let col = Column::from_strs("c", 4, ["a"]).unwrap();
        let (dict, _) = split_sorted(&col);
        let av: AttributeVector = [ValueId(7)].into_iter().collect();
        assert!(!verify_split(&col, &dict, &av));
    }

    #[test]
    fn packed_width_tiers() {
        assert_eq!(packed_id_width(1), 1);
        assert_eq!(packed_id_width(256), 1);
        assert_eq!(packed_id_width(257), 2);
        assert_eq!(packed_id_width(65536), 2);
        assert_eq!(packed_id_width(65537), 4);
    }

    #[test]
    fn paper_compression_example() {
        // §2.1: 10,000 strings of 10 chars with 256 uniques: dictionary
        // 256 * 10 B, attribute vector 10,000 * 1 B.
        let dict_bytes = 256usize * 10;
        let av_bytes = 10_000 * packed_id_width(256);
        assert_eq!(dict_bytes + av_bytes, 12_560);
    }

    #[test]
    fn empty_column_splits_to_empty_structures() {
        let col = Column::new("c", 4);
        let (dict, av) = split_sorted(&col);
        assert!(dict.is_empty());
        assert!(av.is_empty());
        assert!(verify_split(&col, &dict, &av));
    }

    #[test]
    fn dictionary_handles_empty_values() {
        let col = Column::from_strs("c", 4, ["", "a", ""]).unwrap();
        let (dict, av) = split_sorted(&col);
        assert_eq!(dict.len(), 2);
        assert!(verify_split(&col, &dict, &av));
    }
}
