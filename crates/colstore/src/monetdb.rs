//! MonetDB-like plaintext baseline.
//!
//! Paper §5: "MonetDB uses a variant of dictionary encoding for all string
//! columns. The attribute vector contains offsets to the dictionary, but the
//! dictionary contains data in the order it is inserted (for non-duplicates).
//! The dictionary does not contain duplicates if it is small (below 64 kB)
//! and a hash table and collision lists are used to locate entries. The
//! collision list is only used as long as the dictionary does not exceed a
//! certain size. As a result, the dictionary might store values multiple
//! times."
//!
//! For range scans MonetDB performs a **linear number of string
//! comparisons** over the column (§6.3: "MonetDB's attribute vector search
//! performs a linear number of string comparisons") — which is exactly what
//! [`MonetColumn::range_search`] does, and why EncDBDB outperforms it in
//! Figure 8. [`MonetColumn`] is the baseline used for the "MonetDB" series
//! of Table 6 and Figure 8.

use crate::column::Column;
use crate::dictionary::{packed_id_width, RecordId};
use std::collections::HashMap;
use std::ops::Bound;

/// Dedup threshold: below this dictionary byte size, values are deduplicated
/// via the hash table (paper: 64 kB).
pub const DEDUP_LIMIT_BYTES: usize = 64 * 1024;

/// A column stored the way MonetDB stores string columns.
#[derive(Debug, Clone)]
pub struct MonetColumn {
    /// Dictionary arena in insertion order; may contain duplicates once the
    /// dedup limit is exceeded.
    dict_data: Vec<u8>,
    dict_offsets: Vec<u64>,
    /// Attribute vector: for each row, the index of its dictionary entry.
    av: Vec<u32>,
    /// Number of distinct dictionary entries (for storage accounting).
    name: String,
}

impl MonetColumn {
    /// Ingests a plaintext column using MonetDB's insertion strategy.
    pub fn ingest(column: &Column) -> Self {
        let mut dict_data = Vec::new();
        let mut dict_offsets: Vec<u64> = vec![0];
        let mut av = Vec::with_capacity(column.len());
        let mut index: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut dedup_active = true;
        for v in column.iter() {
            if dedup_active && dict_data.len() > DEDUP_LIMIT_BYTES {
                // Paper: the collision list is dropped once the dictionary
                // exceeds a certain size; from then on values may repeat.
                dedup_active = false;
                index.clear();
            }
            let entry = if dedup_active {
                index.get(v).copied()
            } else {
                None
            };
            let id = match entry {
                Some(i) => i,
                None => {
                    let id = (dict_offsets.len() - 1) as u32;
                    dict_data.extend_from_slice(v);
                    dict_offsets.push(dict_data.len() as u64);
                    if dedup_active {
                        index.insert(v.to_vec(), id);
                    }
                    id
                }
            };
            av.push(id);
        }
        MonetColumn {
            dict_data,
            dict_offsets,
            av,
            name: column.name().to_string(),
        }
    }

    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.av.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.av.is_empty()
    }

    /// Number of dictionary entries (may exceed the number of uniques).
    pub fn dict_len(&self) -> usize {
        self.dict_offsets.len() - 1
    }

    /// The dictionary entry for index `i`.
    #[inline]
    fn dict_value(&self, i: u32) -> &[u8] {
        let i = i as usize;
        &self.dict_data[self.dict_offsets[i] as usize..self.dict_offsets[i + 1] as usize]
    }

    /// The value of row `rid`.
    #[inline]
    pub fn value(&self, rid: RecordId) -> &[u8] {
        self.dict_value(self.av[rid.0 as usize])
    }

    /// Range search `[start, end]` with configurable bounds, performing a
    /// **linear string comparison per row** — MonetDB's scan behaviour that
    /// EncDBDB's Figure 8 compares against.
    pub fn range_search(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Vec<RecordId> {
        let mut out = Vec::new();
        for (j, &id) in self.av.iter().enumerate() {
            let v = self.dict_value(id);
            let ge = match start {
                Bound::Included(s) => v >= s,
                Bound::Excluded(s) => v > s,
                Bound::Unbounded => true,
            };
            if !ge {
                continue;
            }
            let le = match end {
                Bound::Included(e) => v <= e,
                Bound::Excluded(e) => v < e,
                Bound::Unbounded => true,
            };
            if le {
                out.push(RecordId(j as u32));
            }
        }
        out
    }

    /// Inclusive range search `[start, end]`.
    pub fn range_search_inclusive(&self, start: &[u8], end: &[u8]) -> Vec<RecordId> {
        self.range_search(Bound::Included(start), Bound::Included(end))
    }

    /// Storage size in bytes: dictionary arena + offset-packed attribute
    /// vector (the "MonetDB" row of Table 6).
    pub fn storage_size(&self) -> usize {
        self.dict_data.len() + self.av.len() * packed_id_width(self.dict_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: &[&str]) -> Column {
        Column::from_strs("c", 32, values.iter().copied()).unwrap()
    }

    #[test]
    fn small_dictionary_dedupes() {
        let m = MonetColumn::ingest(&col(&["b", "a", "b", "c", "a"]));
        assert_eq!(m.dict_len(), 3);
        assert_eq!(m.len(), 5);
        assert_eq!(m.value(RecordId(0)), b"b");
        assert_eq!(m.value(RecordId(4)), b"a");
    }

    #[test]
    fn insertion_order_is_preserved_not_sorted() {
        let m = MonetColumn::ingest(&col(&["zeta", "alpha", "mid"]));
        assert_eq!(m.dict_value(0), b"zeta");
        assert_eq!(m.dict_value(1), b"alpha");
        assert_eq!(m.dict_value(2), b"mid");
    }

    #[test]
    fn large_dictionary_stops_dedup() {
        // Push enough unique long values to blow the 64 kB dedup limit,
        // then repeat one: it must be stored again.
        let mut values: Vec<String> = (0..3000).map(|i| format!("value-{i:020}")).collect();
        values.push("value-00000000000000000000".to_string()); // dup of i=0
        let column = Column::from_strs("c", 32, values.iter()).unwrap();
        let m = MonetColumn::ingest(&column);
        assert!(
            m.dict_len() > 3000,
            "duplicate after the limit must be re-stored, got {}",
            m.dict_len()
        );
    }

    #[test]
    fn range_search_inclusive_bounds() {
        let m = MonetColumn::ingest(&col(&["Hans", "Jessica", "Archie", "Jessica", "Ella"]));
        // Figure 3(a)-style query [Archie, Hans].
        let rids = m.range_search_inclusive(b"Archie", b"Hans");
        let idx: Vec<u32> = rids.iter().map(|r| r.0).collect();
        assert_eq!(idx, vec![0, 2, 4]);
    }

    #[test]
    fn range_search_exclusive_and_unbounded() {
        let m = MonetColumn::ingest(&col(&["a", "b", "c", "d"]));
        let rids = m.range_search(Bound::Excluded(&b"a"[..]), Bound::Excluded(&b"d"[..]));
        assert_eq!(rids.iter().map(|r| r.0).collect::<Vec<_>>(), vec![1, 2]);
        let all = m.range_search(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn empty_range_returns_nothing() {
        let m = MonetColumn::ingest(&col(&["a", "b"]));
        assert!(m.range_search_inclusive(b"x", b"z").is_empty());
    }

    #[test]
    fn storage_size_accounts_dict_and_av() {
        let m = MonetColumn::ingest(&col(&["ab", "cd", "ab"]));
        // dict arena 4 bytes, 3 rows * 1 byte (dict_len 2 -> width 1).
        assert_eq!(m.storage_size(), 4 + 3);
    }
}
