//! Tables: named, row-aligned collections of columns.

use crate::column::Column;
use crate::error::ColstoreError;

/// A plaintext table (used on the data-owner side before encryption, and by
/// the plaintext baselines).
#[derive(Debug, Clone, Default)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a column.
    ///
    /// # Errors
    ///
    /// Returns [`ColstoreError::DuplicateColumn`] if a column with the same
    /// name exists, or [`ColstoreError::RowCountMismatch`] if its row count
    /// differs from existing columns.
    pub fn add_column(&mut self, column: Column) -> Result<(), ColstoreError> {
        if self.columns.iter().any(|c| c.name() == column.name()) {
            return Err(ColstoreError::DuplicateColumn(column.name().to_string()));
        }
        if let Some(first) = self.columns.first() {
            if first.len() != column.len() {
                return Err(ColstoreError::RowCountMismatch {
                    expected: first.len(),
                    got: column.len(),
                });
            }
        }
        self.columns.push(column);
        Ok(())
    }

    /// Looks up a column by name.
    ///
    /// # Errors
    ///
    /// Returns [`ColstoreError::ColumnNotFound`] if absent.
    pub fn column(&self, name: &str) -> Result<&Column, ColstoreError> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| ColstoreError::ColumnNotFound(name.to_string()))
    }

    /// All columns in insertion order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of rows (0 for a table without columns).
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_columns() {
        let mut t = Table::new("t1");
        t.add_column(Column::from_strs("a", 8, ["x", "y"]).unwrap())
            .unwrap();
        t.add_column(Column::from_strs("b", 8, ["1", "2"]).unwrap())
            .unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.column("a").unwrap().value(1), b"y");
        assert!(t.column("missing").is_err());
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut t = Table::new("t1");
        t.add_column(Column::new("a", 8)).unwrap();
        let err = t.add_column(Column::new("a", 8)).unwrap_err();
        assert!(matches!(err, ColstoreError::DuplicateColumn(_)));
    }

    #[test]
    fn row_count_mismatch_rejected() {
        let mut t = Table::new("t1");
        t.add_column(Column::from_strs("a", 8, ["x"]).unwrap())
            .unwrap();
        let err = t
            .add_column(Column::from_strs("b", 8, ["1", "2"]).unwrap())
            .unwrap_err();
        assert!(matches!(err, ColstoreError::RowCountMismatch { .. }));
    }
}
