//! Column-oriented, dictionary-encoding-based, in-memory storage substrate.
//!
//! Implements the database storage concepts of paper §2.1:
//!
//! * [`column::Column`] — a contiguous, arena-backed column of
//!   variable-length values with a fixed maximal length (like `VARCHAR(n)`).
//! * [`dictionary::Dictionary`] + [`dictionary::AttributeVector`] — the two
//!   structures a column is split into by dictionary encoding, together
//!   with split construction and the *split correctness* check of
//!   Definition 1.
//! * [`monetdb`] — a MonetDB-like plaintext baseline: insertion-order
//!   dictionary with hash-based dedup (paper §5) and range scans that do a
//!   linear number of *string* comparisons, which is the behaviour the
//!   paper benchmarks EncDBDB against in Figure 8.
//! * [`delta`] — the delta store (differential buffer) with validity
//!   vectors and merge, used for dynamic data (§4.3).
//! * [`table`] — named collections of columns.
//! * [`stats`] — `un(C)`, `oc(C, v)` and storage-size accounting used by
//!   the Table 6 reproduction.
//! * [`persist`] — a simple binary on-disk format for columns, modelling
//!   the "storage management stores all data on disk for persistency" part
//!   of Fig. 5 step 4.
//!
//! # Example
//!
//! ```
//! use colstore::column::Column;
//! use colstore::dictionary::split_sorted;
//!
//! let col = Column::from_strs("fname", 10, ["Hans", "Jessica", "Archie", "Jessica"]).unwrap();
//! let (dict, av) = split_sorted(&col);
//! assert_eq!(dict.len(), 3); // unique values
//! assert_eq!(av.len(), 4);   // one ValueID per row
//! assert!(colstore::dictionary::verify_split(&col, &dict, &av));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod delta;
pub mod dictionary;
pub mod error;
pub mod monetdb;
pub mod persist;
pub mod stats;
pub mod table;

pub use column::Column;
pub use dictionary::{AttributeVector, Dictionary, RecordId, ValueId};
pub use error::ColstoreError;
