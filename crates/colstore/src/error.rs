//! Error types for the column store.

use std::error::Error;
use std::fmt;

/// Errors produced by column-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ColstoreError {
    /// A value exceeded the column's fixed maximal length.
    ValueTooLong {
        /// Length of the offending value.
        got: usize,
        /// The column's fixed maximal length.
        max: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows in the column.
        rows: usize,
    },
    /// A column with this name was not found.
    ColumnNotFound(String),
    /// A column with this name already exists in the table.
    DuplicateColumn(String),
    /// Columns in a table must all have the same number of rows.
    RowCountMismatch {
        /// Rows in the table so far.
        expected: usize,
        /// Rows in the column being added.
        got: usize,
    },
    /// A persisted blob was malformed.
    CorruptPersistedData(&'static str),
    /// An I/O error occurred while persisting or loading.
    Io(String),
}

impl fmt::Display for ColstoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColstoreError::ValueTooLong { got, max } => {
                write!(f, "value of {got} bytes exceeds column maximum of {max}")
            }
            ColstoreError::RowOutOfBounds { row, rows } => {
                write!(f, "row {row} out of bounds for column with {rows} rows")
            }
            ColstoreError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            ColstoreError::DuplicateColumn(name) => {
                write!(f, "column already exists: {name}")
            }
            ColstoreError::RowCountMismatch { expected, got } => {
                write!(
                    f,
                    "row count mismatch: table has {expected}, column has {got}"
                )
            }
            ColstoreError::CorruptPersistedData(what) => {
                write!(f, "corrupt persisted data: {what}")
            }
            ColstoreError::Io(msg) => write!(f, "i/o failure: {msg}"),
        }
    }
}

impl Error for ColstoreError {}

impl From<std::io::Error> for ColstoreError {
    fn from(e: std::io::Error) -> Self {
        ColstoreError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ColstoreError::ValueTooLong { got: 20, max: 10 };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = ColstoreError::from(io);
        assert!(matches!(e, ColstoreError::Io(_)));
    }
}
