//! Delta store (differential buffer) for dynamic data.
//!
//! Paper §4.3: each column is split into a read-optimized *main store* and a
//! write-optimized *delta store*. Inserts append to the delta; updates
//! append the new value and invalidate the old row via a *validity vector*;
//! deletes just invalidate. Reads run on both stores and merge results
//! while checking validity. Periodic merges fold the delta into the main
//! store to keep reads fast.
//!
//! This module provides the plaintext machinery ([`ValidityVector`],
//! [`DeltaStore`], [`DeltaColumn`]); the *encrypted* delta handling (delta
//! always uses ED9) lives in `encdict::dynamic`.

use crate::column::Column;
use crate::dictionary::RecordId;
use crate::error::ColstoreError;

/// A bitmap recording which rows of a store are valid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidityVector {
    bits: Vec<u64>,
    len: usize,
}

impl ValidityVector {
    /// Creates a validity vector of `len` rows, all valid.
    pub fn all_valid(len: usize) -> Self {
        ValidityVector {
            bits: vec![u64::MAX; len.div_ceil(64)],
            len,
        }
    }

    /// Number of rows tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one row with the given validity.
    pub fn push(&mut self, valid: bool) {
        let idx = self.len;
        if idx / 64 >= self.bits.len() {
            self.bits.push(0);
        }
        if valid {
            self.bits[idx / 64] |= 1 << (idx % 64);
        } else {
            self.bits[idx / 64] &= !(1 << (idx % 64));
        }
        self.len += 1;
    }

    /// Whether row `i` is valid.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "validity index {i} out of bounds {}",
            self.len
        );
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Marks row `i` invalid (a delete, or the old version of an update).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn invalidate(&mut self, i: usize) {
        assert!(
            i < self.len,
            "validity index {i} out of bounds {}",
            self.len
        );
        self.bits[i / 64] &= !(1 << (i % 64));
    }

    /// The validity of rows `0..n` as a fresh vector — the frozen validity
    /// of a delta prefix captured at a compaction watermark.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn prefix(&self, n: usize) -> ValidityVector {
        assert!(n <= self.len, "prefix {n} out of bounds {}", self.len);
        let mut out = ValidityVector {
            bits: self.bits.clone(),
            len: self.len,
        };
        out.bits.truncate(n.div_ceil(64));
        out.len = n;
        // Clear the bits past `n` in the last word so equality and future
        // pushes see a canonical representation.
        let rem = n % 64;
        if rem > 0 {
            if let Some(w) = out.bits.last_mut() {
                *w &= (1u64 << rem) - 1;
            }
        }
        out
    }

    /// The validity of rows `from..len()` as a fresh vector — used when a
    /// compaction consumes a delta prefix and the remaining suffix becomes
    /// the new delta (row `from + i` becomes row `i`).
    ///
    /// # Panics
    ///
    /// Panics if `from > len()`.
    pub fn suffix(&self, from: usize) -> ValidityVector {
        assert!(
            from <= self.len,
            "suffix start {from} out of bounds {}",
            self.len
        );
        let mut out = ValidityVector::default();
        for i in from..self.len {
            out.push(self.is_valid(i));
        }
        out
    }

    /// Number of valid rows.
    pub fn count_valid(&self) -> usize {
        let full = self.len / 64;
        let mut n: usize = self.bits[..full]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let rem = self.len % 64;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            n += (self.bits[full] & mask).count_ones() as usize;
        }
        n
    }
}

/// The write-optimized delta store of one column: an append-only column
/// plus its validity vector.
#[derive(Debug, Clone)]
pub struct DeltaStore {
    values: Column,
    validity: ValidityVector,
}

impl DeltaStore {
    /// Creates an empty delta store for values up to `max_len` bytes.
    pub fn new(max_len: usize) -> Self {
        DeltaStore {
            values: Column::new("delta", max_len),
            validity: ValidityVector::default(),
        }
    }

    /// Appends a new value; returns its delta-local RecordId.
    ///
    /// # Errors
    ///
    /// Returns [`ColstoreError::ValueTooLong`] if the value exceeds the
    /// column maximum.
    pub fn insert(&mut self, value: &[u8]) -> Result<RecordId, ColstoreError> {
        self.values.push(value)?;
        self.validity.push(true);
        Ok(RecordId((self.values.len() - 1) as u32))
    }

    /// Invalidates a delta row (delete / update-old-version).
    ///
    /// # Panics
    ///
    /// Panics if `rid` is out of bounds.
    pub fn invalidate(&mut self, rid: RecordId) {
        self.validity.invalidate(rid.0 as usize);
    }

    /// Number of rows ever appended.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of still-valid rows.
    pub fn valid_len(&self) -> usize {
        self.validity.count_valid()
    }

    /// Value of delta row `rid`.
    pub fn value(&self, rid: RecordId) -> &[u8] {
        self.values.value(rid.0 as usize)
    }

    /// Whether row `rid` is valid.
    pub fn is_valid(&self, rid: RecordId) -> bool {
        self.validity.is_valid(rid.0 as usize)
    }

    /// Iterates over `(RecordId, value)` of *valid* rows.
    pub fn iter_valid(&self) -> impl Iterator<Item = (RecordId, &[u8])> + '_ {
        (0..self.len()).filter_map(move |i| {
            if self.validity.is_valid(i) {
                Some((RecordId(i as u32), self.values.value(i)))
            } else {
                None
            }
        })
    }

    /// The column's fixed maximal value length.
    pub fn max_len(&self) -> usize {
        self.values.max_len()
    }

    /// A frozen copy of the first `n` rows — the compaction input captured
    /// at a watermark while later inserts keep landing in the live store.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn prefix(&self, n: usize) -> DeltaStore {
        assert!(n <= self.len(), "prefix {n} out of bounds {}", self.len());
        let mut values = Column::new("delta", self.values.max_len());
        for i in 0..n {
            values
                .push(self.values.value(i))
                .expect("value came from a column with the same max_len");
        }
        DeltaStore {
            values,
            validity: self.validity.prefix(n),
        }
    }

    /// Drops the first `n` rows after a compaction consumed them: row
    /// `n + i` becomes row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn drain_prefix(&mut self, n: usize) {
        assert!(
            n <= self.len(),
            "drain_prefix {n} out of bounds {}",
            self.len()
        );
        let mut values = Column::new("delta", self.values.max_len());
        for i in n..self.values.len() {
            values
                .push(self.values.value(i))
                .expect("value came from a column with the same max_len");
        }
        self.values = values;
        self.validity = self.validity.suffix(n);
    }

    /// Drains the delta into a plain column of its valid values (a merge
    /// step), leaving the delta empty.
    pub fn drain_valid(&mut self) -> Column {
        let mut out = Column::new("merged-delta", self.values.max_len());
        for (_, v) in self.iter_valid() {
            out.push(v)
                .expect("value came from a column with the same max_len");
        }
        *self = DeltaStore::new(self.values.max_len());
        out
    }
}

/// A full dynamic column: main store (any representation, managed by the
/// caller) is *not* held here — this type tracks main-store validity and
/// the delta store, which is what §4.3 adds on top of a static column.
#[derive(Debug, Clone)]
pub struct DeltaColumn {
    main_validity: ValidityVector,
    delta: DeltaStore,
}

impl DeltaColumn {
    /// Creates delta bookkeeping for a main store of `main_rows` rows with
    /// values up to `max_len` bytes.
    pub fn new(main_rows: usize, max_len: usize) -> Self {
        DeltaColumn {
            main_validity: ValidityVector::all_valid(main_rows),
            delta: DeltaStore::new(max_len),
        }
    }

    /// Inserts a new value into the delta.
    ///
    /// # Errors
    ///
    /// Propagates [`ColstoreError::ValueTooLong`].
    pub fn insert(&mut self, value: &[u8]) -> Result<RecordId, ColstoreError> {
        self.delta.insert(value)
    }

    /// Deletes a main-store row.
    pub fn delete_main(&mut self, rid: RecordId) {
        self.main_validity.invalidate(rid.0 as usize);
    }

    /// Deletes a delta-store row.
    pub fn delete_delta(&mut self, rid: RecordId) {
        self.delta.invalidate(rid);
    }

    /// Updates a main-store row: invalidates it and appends the new value.
    ///
    /// # Errors
    ///
    /// Propagates [`ColstoreError::ValueTooLong`]; the old row is only
    /// invalidated if the insert succeeds.
    pub fn update_main(
        &mut self,
        rid: RecordId,
        new_value: &[u8],
    ) -> Result<RecordId, ColstoreError> {
        let new_rid = self.delta.insert(new_value)?;
        self.main_validity.invalidate(rid.0 as usize);
        Ok(new_rid)
    }

    /// Whether main-store row `rid` is still valid.
    pub fn main_is_valid(&self, rid: RecordId) -> bool {
        self.main_validity.is_valid(rid.0 as usize)
    }

    /// Filters a main-store result list down to valid rows (the §4.3 merge
    /// step of a read query).
    pub fn filter_valid_main(&self, rids: impl IntoIterator<Item = RecordId>) -> Vec<RecordId> {
        rids.into_iter()
            .filter(|r| self.main_is_valid(*r))
            .collect()
    }

    /// Access to the delta store.
    pub fn delta(&self) -> &DeltaStore {
        &self.delta
    }

    /// Mutable access to the delta store.
    pub fn delta_mut(&mut self) -> &mut DeltaStore {
        &mut self.delta
    }

    /// Merge: returns the valid delta values as a column and resets the
    /// delta plus main validity for a rebuilt main store of `new_main_rows`.
    pub fn merge(&mut self, new_main_rows: usize) -> Column {
        let merged = self.delta.drain_valid();
        self.main_validity = ValidityVector::all_valid(new_main_rows);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_push_and_check() {
        let mut v = ValidityVector::default();
        for i in 0..130 {
            v.push(i % 3 != 0);
        }
        assert_eq!(v.len(), 130);
        assert!(!v.is_valid(0));
        assert!(v.is_valid(1));
        assert!(!v.is_valid(129)); // 129 % 3 == 0
        assert_eq!(v.count_valid(), (0..130).filter(|i| i % 3 != 0).count());
    }

    #[test]
    fn validity_all_valid_and_invalidate() {
        let mut v = ValidityVector::all_valid(70);
        assert_eq!(v.count_valid(), 70);
        v.invalidate(64);
        v.invalidate(0);
        assert_eq!(v.count_valid(), 68);
        assert!(!v.is_valid(64));
    }

    #[test]
    fn validity_prefix_truncates() {
        let mut v = ValidityVector::default();
        for i in 0..100 {
            v.push(i % 7 != 0);
        }
        let p = v.prefix(70);
        assert_eq!(p.len(), 70);
        for i in 0..70 {
            assert_eq!(p.is_valid(i), v.is_valid(i));
        }
        assert_eq!(v.prefix(100), v);
        assert!(v.prefix(0).is_empty());
    }

    #[test]
    fn validity_suffix_rebases_rows() {
        let mut v = ValidityVector::default();
        for i in 0..100 {
            v.push(i % 5 != 0);
        }
        let s = v.suffix(67);
        assert_eq!(s.len(), 33);
        for i in 0..33 {
            assert_eq!(s.is_valid(i), v.is_valid(67 + i));
        }
        assert_eq!(v.suffix(100).len(), 0);
        assert_eq!(v.suffix(0), v);
    }

    #[test]
    #[should_panic]
    fn validity_out_of_bounds_panics() {
        let v = ValidityVector::all_valid(3);
        let _ = v.is_valid(3);
    }

    #[test]
    fn delta_insert_and_iterate() {
        let mut d = DeltaStore::new(16);
        let r0 = d.insert(b"new-a").unwrap();
        let r1 = d.insert(b"new-b").unwrap();
        d.invalidate(r0);
        let valid: Vec<&[u8]> = d.iter_valid().map(|(_, v)| v).collect();
        assert_eq!(valid, vec![&b"new-b"[..]]);
        assert_eq!(d.valid_len(), 1);
        assert_eq!(d.value(r1), b"new-b");
    }

    #[test]
    fn delta_prefix_and_drain_prefix_partition() {
        let mut d = DeltaStore::new(16);
        for v in [b"aa" as &[u8], b"bb", b"cc", b"dd"] {
            d.insert(v).unwrap();
        }
        d.invalidate(RecordId(0));
        d.invalidate(RecordId(3));
        let frozen = d.prefix(2);
        assert_eq!(frozen.len(), 2);
        assert_eq!(frozen.value(RecordId(1)), b"bb");
        assert!(!frozen.is_valid(RecordId(0)));
        d.drain_prefix(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(RecordId(0)), b"cc");
        assert!(d.is_valid(RecordId(0)));
        assert!(!d.is_valid(RecordId(1)));
        assert_eq!(d.max_len(), 16);
    }

    #[test]
    fn delta_drain_resets() {
        let mut d = DeltaStore::new(16);
        d.insert(b"a").unwrap();
        let r = d.insert(b"b").unwrap();
        d.invalidate(r);
        let merged = d.drain_valid();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.value(0), b"a");
        assert!(d.is_empty());
    }

    #[test]
    fn delta_column_update_flow() {
        let mut dc = DeltaColumn::new(10, 16);
        assert!(dc.main_is_valid(RecordId(3)));
        let new_rid = dc.update_main(RecordId(3), b"updated").unwrap();
        assert!(!dc.main_is_valid(RecordId(3)));
        assert_eq!(dc.delta().value(new_rid), b"updated");

        let filtered = dc.filter_valid_main((0..10).map(RecordId));
        assert_eq!(filtered.len(), 9);
    }

    #[test]
    fn delta_column_merge_rebuilds_validity() {
        let mut dc = DeltaColumn::new(5, 16);
        dc.delete_main(RecordId(1));
        dc.insert(b"x").unwrap();
        let merged = dc.merge(5); // 4 valid main + 1 delta = 5 new rows
        assert_eq!(merged.len(), 1);
        assert!(dc.main_is_valid(RecordId(1)));
        assert!(dc.delta().is_empty());
    }

    #[test]
    fn value_too_long_propagates() {
        let mut dc = DeltaColumn::new(1, 4);
        assert!(dc.insert(b"way-too-long").is_err());
    }
}
