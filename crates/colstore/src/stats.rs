//! Column statistics: `un(C)`, `oc(C, v)` and storage accounting.
//!
//! Paper §2.1 notation: `un(C)` is the set of unique values in a column,
//! `|un(C)|` their count, `oc(C, v)` the occurrence indices of value `v`,
//! and `|oc(C, v)|` its occurrence count. The frequency-smoothing builder
//! (Algorithm 5) and the Table 3 dictionary-size formula both consume these.

use crate::column::Column;
use std::collections::HashMap;

/// Occurrence statistics of a column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Unique values with their occurrence row indices, i.e. `v → oc(C, v)`.
    occurrences: HashMap<Vec<u8>, Vec<u32>>,
    rows: usize,
}

impl ColumnStats {
    /// Computes statistics for `column`.
    pub fn of(column: &Column) -> Self {
        let mut occurrences: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
        for (j, v) in column.iter().enumerate() {
            occurrences.entry(v.to_vec()).or_default().push(j as u32);
        }
        ColumnStats {
            occurrences,
            rows: column.len(),
        }
    }

    /// `|un(C)|` — number of unique values.
    pub fn unique_count(&self) -> usize {
        self.occurrences.len()
    }

    /// Number of rows, `|C|`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// `oc(C, v)` — occurrence indices of `v`, empty if absent.
    pub fn occurrences_of(&self, v: &[u8]) -> &[u32] {
        self.occurrences.get(v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over `(value, occurrence indices)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u32])> + '_ {
        self.occurrences
            .iter()
            .map(|(v, occ)| (v.as_slice(), occ.as_slice()))
    }

    /// The highest occurrence count of any value.
    pub fn max_occurrences(&self) -> usize {
        self.occurrences.values().map(Vec::len).max().unwrap_or(0)
    }

    /// The expected dictionary size under frequency smoothing with the given
    /// `bs_max` (paper Table 3): `Σ_{v ∈ un(C)} 2·|oc(C,v)| / (1 + bs_max)`,
    /// clamped to at least one bucket per unique value.
    pub fn expected_smoothed_dict_size(&self, bs_max: usize) -> f64 {
        self.occurrences
            .values()
            .map(|occ| (2.0 * occ.len() as f64 / (1.0 + bs_max as f64)).max(1.0))
            .sum()
    }
}

/// Storage-size report for one column representation, in bytes.
///
/// Rows of the paper's Table 6 are instances of this struct for different
/// representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// Bytes held by the dictionary (value arena incl. per-value overheads).
    pub dictionary_bytes: usize,
    /// Bytes held by the (packed) attribute vector.
    pub attribute_vector_bytes: usize,
}

impl StorageReport {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.dictionary_bytes + self.attribute_vector_bytes
    }
}

impl std::fmt::Display for StorageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} MB (dict {:.1} MB + av {:.1} MB)",
            self.total() as f64 / 1e6,
            self.dictionary_bytes as f64 / 1e6,
            self.attribute_vector_bytes as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: &[&str]) -> Column {
        Column::from_strs("c", 16, values.iter().copied()).unwrap()
    }

    #[test]
    fn unique_and_occurrences_match_paper_example() {
        // Figure 1: un(C) = {Hans, Jessica, Archie}, oc(C, Archie) = {1, 5}
        // for the column (Hans, Archie?, ...) — we use the §2.1 ordering:
        let c = col(&["Hans", "Archie", "Jessica", "Jessica", "Jessica", "Archie"]);
        let s = ColumnStats::of(&c);
        assert_eq!(s.unique_count(), 3);
        assert_eq!(s.occurrences_of(b"Archie"), &[1, 5]);
        assert_eq!(s.occurrences_of(b"Jessica").len(), 3);
        assert_eq!(s.occurrences_of(b"absent"), &[] as &[u32]);
        assert_eq!(s.rows(), 6);
        assert_eq!(s.max_occurrences(), 3);
    }

    #[test]
    fn smoothed_size_between_unique_and_rows() {
        let values: Vec<String> = (0..50)
            .flat_map(|i| std::iter::repeat_n(format!("v{i}"), 20))
            .collect();
        let c = Column::from_strs("c", 16, values.iter()).unwrap();
        let s = ColumnStats::of(&c);
        for bs_max in [2usize, 10, 100] {
            let est = s.expected_smoothed_dict_size(bs_max);
            assert!(est >= s.unique_count() as f64);
            assert!(est <= s.rows() as f64 * 2.0);
        }
        // Smaller bs_max -> more duplicates -> larger dictionary.
        assert!(s.expected_smoothed_dict_size(2) > s.expected_smoothed_dict_size(100));
    }

    #[test]
    fn storage_report_totals() {
        let r = StorageReport {
            dictionary_bytes: 100,
            attribute_vector_bytes: 50,
        };
        assert_eq!(r.total(), 150);
        assert!(r.to_string().contains("MB"));
    }
}
