//! Binary persistence for columns.
//!
//! In-memory databases keep the primary copy in RAM and use disk as
//! secondary storage for durability (paper §2.1; Fig. 5 step 4: "The
//! storage management of the in-memory database stores all data on disk for
//! persistency and additionally loads it into main memory"). This module
//! provides a small length-prefixed binary format for [`Column`]s so the
//! DBMS layer can round-trip databases through disk.
//!
//! Encrypted dictionaries are persisted by serializing their untrusted
//! representation (they are ciphertext already — `encdict` stores them
//! outside the enclave).

use crate::column::Column;
use crate::error::ColstoreError;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"ENCDBCL1";

/// Serializes a column into the binary format.
pub fn column_to_bytes(column: &Column) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let name = column.name().as_bytes();
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(column.max_len() as u64).to_le_bytes());
    out.extend_from_slice(&(column.len() as u64).to_le_bytes());
    for v in column.iter() {
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(v);
    }
    out
}

/// Deserializes a column from the binary format.
///
/// # Errors
///
/// Returns [`ColstoreError::CorruptPersistedData`] on any structural
/// problem (bad magic, truncation, length overflow, oversized value).
pub fn column_from_bytes(bytes: &[u8]) -> Result<Column, ColstoreError> {
    let corrupt = ColstoreError::CorruptPersistedData;
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], ColstoreError> {
        if *pos + n > bytes.len() {
            return Err(corrupt("truncated"));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 8)? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let name = std::str::from_utf8(take(&mut pos, name_len)?)
        .map_err(|_| corrupt("column name not utf-8"))?
        .to_string();
    let max_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    let rows = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    if rows > bytes.len() {
        // Each row costs at least 4 bytes of length prefix; a row count
        // larger than the blob is certainly corrupt.
        return Err(corrupt("row count exceeds blob size"));
    }
    let mut column = Column::new(name, max_len);
    for _ in 0..rows {
        let vlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let v = take(&mut pos, vlen)?;
        column
            .push(v)
            .map_err(|_| corrupt("value exceeds column maximum"))?;
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(column)
}

/// Writes a column to a file.
///
/// # Errors
///
/// Returns [`ColstoreError::Io`] on filesystem failures.
pub fn write_column(path: &Path, column: &Column) -> Result<(), ColstoreError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&column_to_bytes(column))?;
    Ok(())
}

/// Reads a column from a file.
///
/// # Errors
///
/// Returns [`ColstoreError::Io`] on filesystem failures or
/// [`ColstoreError::CorruptPersistedData`] on format problems.
pub fn read_column(path: &Path) -> Result<Column, ColstoreError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    column_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let c = Column::from_strs("fname", 12, ["Hans", "", "Jessica"]).unwrap();
        let bytes = column_to_bytes(&c);
        let back = column_from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_file() {
        let dir = std::env::temp_dir().join("encdbdb-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("col.bin");
        let c = Column::from_strs("x", 8, ["a", "bb", "ccc"]).unwrap();
        write_column(&path, &c).unwrap();
        let back = read_column(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let c = Column::from_strs("x", 8, ["a"]).unwrap();
        let mut bytes = column_to_bytes(&c);
        bytes[0] ^= 1;
        assert!(column_from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let c = Column::from_strs("x", 8, ["abc", "def"]).unwrap();
        let bytes = column_to_bytes(&c);
        for cut in [5usize, 12, bytes.len() - 1] {
            assert!(column_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let c = Column::from_strs("x", 8, ["a"]).unwrap();
        let mut bytes = column_to_bytes(&c);
        bytes.push(0);
        assert!(column_from_bytes(&bytes).is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_column(Path::new("/nonexistent/encdbdb")).unwrap_err();
        assert!(matches!(err, ColstoreError::Io(_)));
    }
}
