//! Binary persistence for columns.
//!
//! In-memory databases keep the primary copy in RAM and use disk as
//! secondary storage for durability (paper §2.1; Fig. 5 step 4: "The
//! storage management of the in-memory database stores all data on disk for
//! persistency and additionally loads it into main memory"). This module
//! provides a small length-prefixed binary format for [`Column`]s so the
//! DBMS layer can round-trip databases through disk.
//!
//! Encrypted dictionaries are persisted by serializing their untrusted
//! representation (they are ciphertext already — `encdict` stores them
//! outside the enclave).

use crate::column::Column;
use crate::error::ColstoreError;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"ENCDBCL1";

/// Serializes a column into the binary format.
pub fn column_to_bytes(column: &Column) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let name = column.name().as_bytes();
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(column.max_len() as u64).to_le_bytes());
    out.extend_from_slice(&(column.len() as u64).to_le_bytes());
    for v in column.iter() {
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(v);
    }
    out
}

/// Deserializes a column from the binary format.
///
/// # Errors
///
/// Returns [`ColstoreError::CorruptPersistedData`] on any structural
/// problem (bad magic, truncation, length overflow, oversized value).
pub fn column_from_bytes(bytes: &[u8]) -> Result<Column, ColstoreError> {
    let corrupt = ColstoreError::CorruptPersistedData;
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], ColstoreError> {
        if *pos + n > bytes.len() {
            return Err(corrupt("truncated"));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 8)? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let name = std::str::from_utf8(take(&mut pos, name_len)?)
        .map_err(|_| corrupt("column name not utf-8"))?
        .to_string();
    let max_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    let rows = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    if rows > bytes.len() {
        // Each row costs at least 4 bytes of length prefix; a row count
        // larger than the blob is certainly corrupt.
        return Err(corrupt("row count exceeds blob size"));
    }
    let mut column = Column::new(name, max_len);
    for _ in 0..rows {
        let vlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let v = take(&mut pos, vlen)?;
        column
            .push(v)
            .map_err(|_| corrupt("value exceeds column maximum"))?;
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(column)
}

/// Writes a column to a file.
///
/// # Errors
///
/// Returns [`ColstoreError::Io`] on filesystem failures.
pub fn write_column(path: &Path, column: &Column) -> Result<(), ColstoreError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&column_to_bytes(column))?;
    Ok(())
}

/// Reads a column from a file.
///
/// # Errors
///
/// Returns [`ColstoreError::Io`] on filesystem failures or
/// [`ColstoreError::CorruptPersistedData`] on format problems.
pub fn read_column(path: &Path) -> Result<Column, ColstoreError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    column_from_bytes(&bytes)
}

// ---------------------------------------------------------------------------
// CRC-framed record streams
// ---------------------------------------------------------------------------
//
// The durable layers above (the delta write-ahead log and sealed snapshot
// files) need a self-delimiting record format that can distinguish a torn
// tail (a crash mid-write — expected, recoverable) from corruption (bit
// rot or tampering — reported). Each frame is `[len u32][crc32 u32][payload]`,
// both integers little-endian, the checksum over the payload only.

/// Bytes of framing overhead per frame (`len` + `crc` prefix).
pub const FRAME_HEADER_BYTES: usize = 8;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Wraps `payload` in a `[len][crc][payload]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// How parsing a frame stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameTail {
    /// Every byte belonged to a complete, checksum-valid frame.
    Clean,
    /// The final frame is incomplete — the classic torn write of a crash.
    /// `offset` is where the torn frame starts, i.e. where to truncate.
    Torn {
        /// Byte offset of the start of the incomplete frame.
        offset: usize,
    },
    /// A complete frame failed its checksum — corruption, not a torn tail.
    /// `offset` is where the corrupt frame starts.
    Corrupt {
        /// Byte offset of the start of the corrupt frame.
        offset: usize,
    },
}

impl FrameTail {
    /// The prefix length of the stream that parsed cleanly.
    pub fn valid_prefix(&self, total: usize) -> usize {
        match *self {
            FrameTail::Clean => total,
            FrameTail::Torn { offset } | FrameTail::Corrupt { offset } => offset,
        }
    }
}

/// Parses consecutive frames out of `bytes`.
///
/// Returns the payload slices of every frame up to the first problem, plus
/// a [`FrameTail`] describing how the stream ended. A declared length that
/// overruns the remaining bytes is reported as [`FrameTail::Torn`] (it is
/// indistinguishable from an interrupted write); a checksum mismatch on a
/// complete frame is [`FrameTail::Corrupt`]. Parsing never panics.
pub fn read_frames(bytes: &[u8]) -> (Vec<&[u8]>, FrameTail) {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER_BYTES {
            return (frames, FrameTail::Torn { offset: pos });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if remaining - FRAME_HEADER_BYTES < len {
            return (frames, FrameTail::Torn { offset: pos });
        }
        let payload = &bytes[pos + FRAME_HEADER_BYTES..pos + FRAME_HEADER_BYTES + len];
        if crc32(payload) != crc {
            return (frames, FrameTail::Corrupt { offset: pos });
        }
        frames.push(payload);
        pos += FRAME_HEADER_BYTES + len;
    }
    (frames, FrameTail::Clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let c = Column::from_strs("fname", 12, ["Hans", "", "Jessica"]).unwrap();
        let bytes = column_to_bytes(&c);
        let back = column_from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_file() {
        let dir = std::env::temp_dir().join("encdbdb-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("col.bin");
        let c = Column::from_strs("x", 8, ["a", "bb", "ccc"]).unwrap();
        write_column(&path, &c).unwrap();
        let back = read_column(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let c = Column::from_strs("x", 8, ["a"]).unwrap();
        let mut bytes = column_to_bytes(&c);
        bytes[0] ^= 1;
        assert!(column_from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let c = Column::from_strs("x", 8, ["abc", "def"]).unwrap();
        let bytes = column_to_bytes(&c);
        for cut in [5usize, 12, bytes.len() - 1] {
            assert!(column_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let c = Column::from_strs("x", 8, ["a"]).unwrap();
        let mut bytes = column_to_bytes(&c);
        bytes.push(0);
        assert!(column_from_bytes(&bytes).is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_column(Path::new("/nonexistent/encdbdb")).unwrap_err();
        assert!(matches!(err, ColstoreError::Io(_)));
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_stream_roundtrip() {
        let payloads: [&[u8]; 3] = [b"alpha", b"", b"gamma-delta"];
        let mut stream = Vec::new();
        for p in payloads {
            stream.extend_from_slice(&frame(p));
        }
        let (frames, tail) = read_frames(&stream);
        assert_eq!(frames, payloads.to_vec());
        assert_eq!(tail, FrameTail::Clean);
        assert_eq!(tail.valid_prefix(stream.len()), stream.len());
    }

    #[test]
    fn torn_tail_detected_at_every_cut() {
        let mut stream = frame(b"first-record");
        let second_start = stream.len();
        stream.extend_from_slice(&frame(b"second"));
        for cut in second_start + 1..stream.len() {
            let (frames, tail) = read_frames(&stream[..cut]);
            assert_eq!(frames, vec![b"first-record" as &[u8]], "cut {cut}");
            assert_eq!(
                tail,
                FrameTail::Torn {
                    offset: second_start
                },
                "cut {cut}"
            );
        }
    }

    #[test]
    fn payload_corruption_detected() {
        let mut stream = frame(b"first");
        let second_start = stream.len();
        stream.extend_from_slice(&frame(b"second"));
        stream[second_start + FRAME_HEADER_BYTES] ^= 0x01;
        let (frames, tail) = read_frames(&stream);
        assert_eq!(frames, vec![b"first" as &[u8]]);
        assert_eq!(
            tail,
            FrameTail::Corrupt {
                offset: second_start
            }
        );
        assert_eq!(tail.valid_prefix(stream.len()), second_start);
    }

    #[test]
    fn oversized_declared_length_is_torn_not_panic() {
        let mut stream = frame(b"ok");
        let bad_start = stream.len();
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.extend_from_slice(&[0u8; 12]);
        let (frames, tail) = read_frames(&stream);
        assert_eq!(frames.len(), 1);
        assert_eq!(tail, FrameTail::Torn { offset: bad_start });
    }
}
