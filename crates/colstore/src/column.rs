//! Arena-backed columns of variable-length values.
//!
//! A [`Column`] stores successive values contiguously (column-oriented
//! storage, paper §2.1) in a single byte arena plus an offset table, and
//! carries a *fixed maximal length* — the analogue of `VARCHAR(n)` — which
//! the order-preserving `ENCODE` operation of Algorithm 3 relies on.

use crate::error::ColstoreError;

/// A column of variable-length byte-string values.
///
/// Values are ordered lexicographically on their bytes, which for ASCII
/// strings matches the paper's lexicographic value order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    name: String,
    max_len: usize,
    data: Vec<u8>,
    offsets: Vec<u64>,
}

impl Column {
    /// Creates an empty column named `name` with fixed maximal value length
    /// `max_len` bytes.
    pub fn new(name: impl Into<String>, max_len: usize) -> Self {
        Column {
            name: name.into(),
            max_len,
            data: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Builds a column from string values.
    ///
    /// # Errors
    ///
    /// Returns [`ColstoreError::ValueTooLong`] if any value exceeds
    /// `max_len` bytes.
    pub fn from_strs<I, S>(
        name: impl Into<String>,
        max_len: usize,
        values: I,
    ) -> Result<Self, ColstoreError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut col = Column::new(name, max_len);
        for v in values {
            col.push(v.as_ref().as_bytes())?;
        }
        Ok(col)
    }

    /// Appends a value.
    ///
    /// # Errors
    ///
    /// Returns [`ColstoreError::ValueTooLong`] if `value` exceeds the
    /// column's fixed maximal length.
    pub fn push(&mut self, value: &[u8]) -> Result<(), ColstoreError> {
        if value.len() > self.max_len {
            return Err(ColstoreError::ValueTooLong {
                got: value.len(),
                max: self.max_len,
            });
        }
        self.data.extend_from_slice(value);
        self.offsets.push(self.data.len() as u64);
        Ok(())
    }

    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fixed maximal value length in bytes.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Number of values (rows).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the value at row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn value(&self, i: usize) -> &[u8] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Returns the value at row `i`, or `None` if out of bounds.
    pub fn get(&self, i: usize) -> Option<&[u8]> {
        if i < self.len() {
            Some(self.value(i))
        } else {
            None
        }
    }

    /// Iterates over all values in row order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Bytes this column occupies when written as an uncompressed
    /// *plaintext file* (the "Plaintext file" row of the paper's Table 6):
    /// just the raw value bytes, no dictionary encoding.
    pub fn plaintext_file_size(&self) -> usize {
        self.data.len()
    }

    /// In-memory heap footprint (arena plus offset table).
    pub fn heap_size(&self) -> usize {
        self.data.len() + self.offsets.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut c = Column::new("c", 8);
        c.push(b"Hans").unwrap();
        c.push(b"Jessica").unwrap();
        c.push(b"").unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), b"Hans");
        assert_eq!(c.value(1), b"Jessica");
        assert_eq!(c.value(2), b"");
        assert_eq!(c.get(3), None);
    }

    #[test]
    fn rejects_too_long_values() {
        let mut c = Column::new("c", 4);
        let err = c.push(b"toolong").unwrap_err();
        assert_eq!(err, ColstoreError::ValueTooLong { got: 7, max: 4 });
        assert!(c.is_empty());
    }

    #[test]
    fn from_strs_builds_in_order() {
        let c = Column::from_strs("fname", 10, ["Jessica", "Archie", "Hans"]).unwrap();
        let vals: Vec<&[u8]> = c.iter().collect();
        assert_eq!(vals, vec![&b"Jessica"[..], b"Archie", b"Hans"]);
    }

    #[test]
    fn plaintext_file_size_is_sum_of_value_lengths() {
        let c = Column::from_strs("c", 10, ["ab", "cde", ""]).unwrap();
        assert_eq!(c.plaintext_file_size(), 5);
    }

    #[test]
    fn duplicate_values_are_stored_separately() {
        let c = Column::from_strs("c", 10, ["x", "x", "x"]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.plaintext_file_size(), 3);
    }
}
