//! Property-based tests for the storage substrate.

use colstore::column::Column;
use colstore::delta::ValidityVector;
use colstore::dictionary::{split_insertion_order, split_sorted, verify_split};
use colstore::monetdb::MonetColumn;
use colstore::persist;
use proptest::prelude::*;

fn values_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-e]{0,5}", 0..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both split constructions satisfy Definition 1 on arbitrary columns.
    #[test]
    fn splits_are_correct(values in values_strategy()) {
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        let (d1, av1) = split_sorted(&col);
        prop_assert!(verify_split(&col, &d1, &av1));
        let (d2, av2) = split_insertion_order(&col);
        prop_assert!(verify_split(&col, &d2, &av2));
        // Both dedupe to the same unique count.
        prop_assert_eq!(d1.len(), d2.len());
    }

    /// The sorted split produces a strictly increasing dictionary.
    #[test]
    fn sorted_split_is_strictly_sorted(values in values_strategy()) {
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        let (dict, _) = split_sorted(&col);
        for i in 1..dict.len() {
            use colstore::dictionary::ValueId;
            prop_assert!(dict.value(ValueId((i - 1) as u32)) < dict.value(ValueId(i as u32)));
        }
    }

    /// MonetDB range scans agree with a direct reference scan.
    #[test]
    fn monetdb_scan_matches_reference(values in values_strategy(),
                                      lo in "[a-e]{0,3}", hi in "[a-e]{0,3}") {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        let m = MonetColumn::ingest(&col);
        let got: Vec<u32> = m
            .range_search_inclusive(lo.as_bytes(), hi.as_bytes())
            .iter()
            .map(|r| r.0)
            .collect();
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.as_str() >= lo.as_str() && v.as_str() <= hi.as_str())
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Column persistence round-trips arbitrary contents.
    #[test]
    fn persistence_roundtrip(values in values_strategy()) {
        let col = Column::from_strs("col_name", 8, values.iter()).unwrap();
        let bytes = persist::column_to_bytes(&col);
        let back = persist::column_from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, col);
    }

    /// Validity vectors count exactly the bits that were set.
    #[test]
    fn validity_count_matches_model(bits in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut v = ValidityVector::default();
        for &b in &bits {
            v.push(b);
        }
        prop_assert_eq!(v.count_valid(), bits.iter().filter(|b| **b).count());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.is_valid(i), b);
        }
    }

    /// Arbitrary WAL frame streams survive `frame` → `read_frames`
    /// byte-for-byte: every payload comes back verbatim and the tail is
    /// clean.
    #[test]
    fn frame_streams_roundtrip(payloads in payloads_strategy()) {
        let bytes = concat_frames(&payloads);
        let (frames, tail) = persist::read_frames(&bytes);
        prop_assert_eq!(tail, persist::FrameTail::Clean);
        prop_assert_eq!(tail.valid_prefix(bytes.len()), bytes.len());
        prop_assert_eq!(frames.len(), payloads.len());
        for (got, want) in frames.iter().zip(&payloads) {
            prop_assert_eq!(*got, want.as_slice());
        }
    }

    /// Truncating a frame stream at *any* byte (the crash model for a torn
    /// WAL append) preserves exactly the complete-frame prefix, reports a
    /// torn tail unless the cut lands on a frame boundary, and the
    /// reported valid prefix re-parses clean — so recovery's
    /// truncate-to-valid-prefix converges in one step.
    #[test]
    fn truncated_frame_streams_keep_their_prefix(payloads in payloads_strategy(),
                                                 cut_frac in 0.0f64..1.0) {
        let bytes = concat_frames(&payloads);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let (frames, tail) = persist::read_frames(&bytes[..cut]);
        // Every recovered payload is an intact prefix of the originals.
        prop_assert!(frames.len() <= payloads.len());
        for (got, want) in frames.iter().zip(&payloads) {
            prop_assert_eq!(*got, want.as_slice());
        }
        let valid = tail.valid_prefix(cut);
        prop_assert!(valid <= cut);
        // On a frame boundary the cut looks clean; anywhere else it is a
        // torn (never "corrupt") tail.
        let boundary = is_frame_boundary(&payloads, cut);
        match tail {
            persist::FrameTail::Clean => prop_assert!(boundary),
            persist::FrameTail::Torn { .. } => prop_assert!(!boundary),
            persist::FrameTail::Corrupt { .. } => prop_assert!(false, "truncation is not corruption"),
        }
        // Recovery truncates to `valid`; the result must re-parse clean
        // with the same frames.
        let (again, clean) = persist::read_frames(&bytes[..valid]);
        prop_assert_eq!(clean, persist::FrameTail::Clean);
        prop_assert_eq!(again.len(), frames.len());
    }

    /// Flipping a single bit anywhere in a frame stream never panics and
    /// never disturbs the frames *before* the flip: parsing stops at (or
    /// after) the damaged frame and the valid prefix still re-parses clean.
    #[test]
    fn bit_flipped_frame_streams_never_lie_about_the_prefix(
        payloads in payloads_strategy(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let bytes = concat_frames(&payloads);
        prop_assume!(!bytes.is_empty());
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << bit;

        let (frames, tail) = persist::read_frames(&bad);
        // Frames that end strictly before the flipped byte are untouched.
        let intact = frames_before(&payloads, pos);
        prop_assert!(frames.len() >= intact);
        for (got, want) in frames.iter().take(intact).zip(&payloads) {
            prop_assert_eq!(*got, want.as_slice());
        }
        let valid = tail.valid_prefix(bad.len());
        let (_, clean_tail) = persist::read_frames(&bad[..valid]);
        prop_assert_eq!(clean_tail, persist::FrameTail::Clean);
    }
}

fn payloads_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..12)
}

fn concat_frames(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for p in payloads {
        bytes.extend_from_slice(&persist::frame(p));
    }
    bytes
}

/// Whether `cut` lands exactly between two frames of the stream.
fn is_frame_boundary(payloads: &[Vec<u8>], cut: usize) -> bool {
    let mut off = 0usize;
    if cut == 0 {
        return true;
    }
    for p in payloads {
        off += persist::FRAME_HEADER_BYTES + p.len();
        if off == cut {
            return true;
        }
        if off > cut {
            return false;
        }
    }
    false
}

/// How many leading frames end strictly before byte `pos`.
fn frames_before(payloads: &[Vec<u8>], pos: usize) -> usize {
    let mut off = 0usize;
    let mut n = 0usize;
    for p in payloads {
        off += persist::FRAME_HEADER_BYTES + p.len();
        if off <= pos {
            n += 1;
        } else {
            break;
        }
    }
    n
}
