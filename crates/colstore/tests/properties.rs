//! Property-based tests for the storage substrate.

use colstore::column::Column;
use colstore::delta::ValidityVector;
use colstore::dictionary::{split_insertion_order, split_sorted, verify_split};
use colstore::monetdb::MonetColumn;
use colstore::persist;
use proptest::prelude::*;

fn values_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-e]{0,5}", 0..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both split constructions satisfy Definition 1 on arbitrary columns.
    #[test]
    fn splits_are_correct(values in values_strategy()) {
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        let (d1, av1) = split_sorted(&col);
        prop_assert!(verify_split(&col, &d1, &av1));
        let (d2, av2) = split_insertion_order(&col);
        prop_assert!(verify_split(&col, &d2, &av2));
        // Both dedupe to the same unique count.
        prop_assert_eq!(d1.len(), d2.len());
    }

    /// The sorted split produces a strictly increasing dictionary.
    #[test]
    fn sorted_split_is_strictly_sorted(values in values_strategy()) {
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        let (dict, _) = split_sorted(&col);
        for i in 1..dict.len() {
            use colstore::dictionary::ValueId;
            prop_assert!(dict.value(ValueId((i - 1) as u32)) < dict.value(ValueId(i as u32)));
        }
    }

    /// MonetDB range scans agree with a direct reference scan.
    #[test]
    fn monetdb_scan_matches_reference(values in values_strategy(),
                                      lo in "[a-e]{0,3}", hi in "[a-e]{0,3}") {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let col = Column::from_strs("c", 8, values.iter()).unwrap();
        let m = MonetColumn::ingest(&col);
        let got: Vec<u32> = m
            .range_search_inclusive(lo.as_bytes(), hi.as_bytes())
            .iter()
            .map(|r| r.0)
            .collect();
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.as_str() >= lo.as_str() && v.as_str() <= hi.as_str())
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Column persistence round-trips arbitrary contents.
    #[test]
    fn persistence_roundtrip(values in values_strategy()) {
        let col = Column::from_strs("col_name", 8, values.iter()).unwrap();
        let bytes = persist::column_to_bytes(&col);
        let back = persist::column_from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, col);
    }

    /// Validity vectors count exactly the bits that were set.
    #[test]
    fn validity_count_matches_model(bits in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut v = ValidityVector::default();
        for &b in &bits {
            v.push(b);
        }
        prop_assert_eq!(v.count_valid(), bits.iter().filter(|b| **b).count());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.is_valid(i), b);
        }
    }
}
