//! A software simulation of an SGX-like trusted execution environment.
//!
//! The paper (§2.2) uses Intel SGX for three capabilities:
//!
//! 1. **Memory isolation** — an enclave whose code/data cannot be read by
//!    any other software; the enclave can read the untrusted host memory,
//!    the host can only enter through a well-defined interface (ECALLs).
//! 2. **Remote attestation** — a measurement (hash) of the initial enclave
//!    code/data, signed by the platform, lets a remote party verify enclave
//!    identity and establish a secure channel into it.
//! 3. **Secure provisioning** — sensitive data (the database key `SK_DB`)
//!    is deployed over that channel directly into the enclave.
//!
//! No SGX hardware is available here, so this crate provides a faithful
//! *behavioural* substitute (see DESIGN.md):
//!
//! * [`Enclave`] encapsulates trusted state behind an explicit
//!   [`Enclave::ecall`] boundary; Rust's type system plays the role of the
//!   hardware isolation (trusted fields are private and never leave).
//! * [`memory`] tracks every load of untrusted memory into the enclave and
//!   accounts trusted-heap usage against the ~96 MiB EPC budget, so tests
//!   can *prove* the paper's claim that dictionary search needs only small,
//!   constant enclave memory independent of the dictionary size.
//! * [`attestation`] implements measurement-based remote attestation with a
//!   simulated platform/quoting key and verification service.
//! * [`channel`] establishes an authenticated X25519 + AES-GCM channel used
//!   to provision keys (paper Fig. 5, steps 1–2).
//! * [`sealing`] seals data to the enclave identity, as SGX sealing does.
//!
//! # Example
//!
//! ```
//! use enclave_sim::{Enclave, EnclaveLogic, TrustedEnv};
//!
//! struct Adder;
//! impl EnclaveLogic for Adder {
//!     type Call<'a> = (u32, u32);
//!     type Reply = u32;
//!     fn code_identity(&self) -> &'static [u8] { b"adder-v1" }
//!     fn dispatch(&mut self, _env: &mut TrustedEnv, call: (u32, u32)) -> u32 {
//!         call.0 + call.1
//!     }
//! }
//!
//! let mut enclave = Enclave::new(Adder);
//! assert_eq!(enclave.ecall((2, 3)), 5);
//! assert_eq!(enclave.counters().ecalls, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod channel;
pub mod error;
pub mod memory;
pub mod sealing;

pub use error::EnclaveError;
pub use memory::{EcallCounters, TrustedEnv, UntrustedMemory, EPC_BUDGET_BYTES};

use crate::attestation::{Measurement, Quote, SigningPlatform};
use encdbdb_crypto::keys::{Key128, Key256};
use encdbdb_crypto::x25519;
use rand::RngCore;

/// Trusted code running inside an enclave.
///
/// Implementors define the ECALL message type, the reply type, and the code
/// identity that is *measured* at enclave creation. The dispatch method
/// receives a [`TrustedEnv`] through which all untrusted-memory loads and
/// trusted allocations must flow, so that the simulator can account them.
pub trait EnclaveLogic: Send {
    /// The ECALL request message. The lifetime lets requests borrow
    /// host-owned (untrusted) memory, exactly like an SGX ECALL passing
    /// pointers into the host address space.
    type Call<'a>;
    /// The ECALL reply message.
    type Reply;

    /// Bytes representing the enclave's initial code and data; hashing them
    /// yields the enclave [`Measurement`] used by attestation.
    fn code_identity(&self) -> &'static [u8];

    /// Handles one ECALL inside the trusted environment.
    fn dispatch(&mut self, env: &mut TrustedEnv, call: Self::Call<'_>) -> Self::Reply;
}

/// An enclave instance hosting logic `L`.
///
/// All interaction goes through [`Enclave::ecall`]; the built-in
/// provisioning ECALLs ([`Enclave::attest`], [`Enclave::provision_key`])
/// model SGX's attestation + secure-channel flow.
#[derive(Debug)]
pub struct Enclave<L> {
    logic: L,
    env: TrustedEnv,
    measurement: Measurement,
    platform: SigningPlatform,
    /// Ephemeral DH secret generated for the current attestation round.
    dh_secret: Option<Key256>,
}

impl<L: EnclaveLogic> Enclave<L> {
    /// Creates (and "measures") an enclave on a default local platform.
    pub fn new(logic: L) -> Self {
        Self::on_platform(logic, SigningPlatform::default())
    }

    /// Creates an enclave on the given signing platform.
    pub fn on_platform(logic: L, platform: SigningPlatform) -> Self {
        let measurement = Measurement::of(logic.code_identity());
        Enclave {
            logic,
            env: TrustedEnv::new(),
            measurement,
            platform,
            dh_secret: None,
        }
    }

    /// The enclave's measurement (public).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Performs one ECALL into the trusted logic.
    pub fn ecall(&mut self, call: L::Call<'_>) -> L::Reply {
        self.env.count_ecall();
        self.logic.dispatch(&mut self.env, call)
    }

    /// Boundary-crossing and memory counters accumulated so far.
    pub fn counters(&self) -> EcallCounters {
        self.env.counters()
    }

    /// Resets the boundary counters (e.g. between benchmark phases).
    pub fn reset_counters(&mut self) {
        self.env.reset_counters();
    }

    /// Peak trusted-heap usage in bytes since creation (or last reset).
    pub fn trusted_heap_peak(&self) -> usize {
        self.env.heap_peak()
    }

    /// Resets the trusted-heap peak gauge.
    pub fn reset_heap_peak(&mut self) {
        self.env.reset_heap_peak();
    }

    /// ECALL: starts a remote-attestation round.
    ///
    /// The enclave generates an ephemeral X25519 key pair inside, embeds the
    /// public key in the report data, and has the platform produce a signed
    /// [`Quote`] over `(measurement, report_data)` — mirroring SGX's
    /// `sgx_create_report` + quoting-enclave flow.
    pub fn attest<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Quote {
        self.env.count_ecall();
        let secret = Key256::generate(rng);
        let public = x25519::public_key(&secret);
        self.dh_secret = Some(secret);
        self.platform.quote(self.measurement, public)
    }

    /// ECALL: completes provisioning of the database master key `SK_DB`.
    ///
    /// `peer_public` is the data owner's ephemeral X25519 public key and
    /// `sealed_key` the AES-GCM encryption of the 16-byte key under the
    /// derived session key (see [`channel`]).
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::NoAttestationRound`] if [`Enclave::attest`]
    /// was not called first, or [`EnclaveError::Crypto`] if decryption of
    /// the wrapped key fails.
    pub fn provision_key(
        &mut self,
        peer_public: &[u8; 32],
        sealed_key: &[u8],
    ) -> Result<(), EnclaveError> {
        self.env.count_ecall();
        let secret = self
            .dh_secret
            .take()
            .ok_or(EnclaveError::NoAttestationRound)?;
        let session = channel::session_key(&secret, peer_public, channel::Role::Enclave);
        let pae = encdbdb_crypto::Pae::new(&session);
        let key_bytes = pae.decrypt_bytes(sealed_key, channel::PROVISION_AAD)?;
        let key = Key128::from_slice(&key_bytes).map_err(EnclaveError::Crypto)?;
        self.env.provision_master_key(key);
        Ok(())
    }

    /// Whether a master key has been provisioned.
    pub fn is_provisioned(&self) -> bool {
        self.env.master_key().is_some()
    }

    /// Directly installs `SK_DB` without the attestation dance.
    ///
    /// This models the paper's *trusted-setup* variant (§4.2: "the DBaaS
    /// provider is assumed trusted for the initial setup"). Tests and
    /// benchmarks use it to skip the channel handshake.
    pub fn provision_key_direct(&mut self, key: Key128) {
        self.env.count_ecall();
        self.env.provision_master_key(key);
    }

    /// ECALL: seals `data` to this enclave's identity.
    ///
    /// Models `sgx_seal_data`: the sealing key is derived from the platform
    /// root secret and this enclave's measurement (see [`crate::sealing`]),
    /// so only an enclave with the same code identity on the same platform
    /// can unseal. Sealing needs no provisioned master key — a freshly
    /// started (not yet provisioned) enclave can seal and unseal, which is
    /// what makes crash recovery possible before the data owner re-attaches.
    pub fn seal_data<R: RngCore + ?Sized>(&mut self, rng: &mut R, data: &[u8]) -> Vec<u8> {
        self.env.count_ecall();
        sealing::seal(&self.platform, self.measurement, rng, data)
    }

    /// ECALL: unseals a blob produced by [`Enclave::seal_data`] on an
    /// enclave with the same identity.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::Crypto`] if the blob was sealed for a
    /// different enclave/platform or was tampered with.
    pub fn unseal_data(&mut self, blob: &[u8]) -> Result<Vec<u8>, EnclaveError> {
        self.env.count_ecall();
        sealing::unseal(&self.platform, self.measurement, blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Echo;
    impl EnclaveLogic for Echo {
        type Call<'a> = Vec<u8>;
        type Reply = Vec<u8>;
        fn code_identity(&self) -> &'static [u8] {
            b"echo-logic-v1"
        }
        fn dispatch(&mut self, env: &mut TrustedEnv, call: Vec<u8>) -> Vec<u8> {
            env.track_alloc(call.len());
            let reply = call.clone();
            env.track_free(call.len());
            reply
        }
    }

    #[test]
    fn ecalls_are_counted() {
        let mut e = Enclave::new(Echo);
        for _ in 0..5 {
            e.ecall(vec![1, 2, 3]);
        }
        assert_eq!(e.counters().ecalls, 5);
        e.reset_counters();
        assert_eq!(e.counters().ecalls, 0);
    }

    #[test]
    fn heap_peak_tracks_allocations() {
        let mut e = Enclave::new(Echo);
        e.ecall(vec![0u8; 1000]);
        assert!(e.trusted_heap_peak() >= 1000);
    }

    #[test]
    fn measurement_depends_on_code() {
        struct Other;
        impl EnclaveLogic for Other {
            type Call<'a> = ();
            type Reply = ();
            fn code_identity(&self) -> &'static [u8] {
                b"other-logic"
            }
            fn dispatch(&mut self, _: &mut TrustedEnv, _: ()) {}
        }
        let a = Enclave::new(Echo);
        let b = Enclave::new(Other);
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn full_provisioning_flow() {
        let mut rng = StdRng::seed_from_u64(11);
        let platform = SigningPlatform::generate(&mut rng);
        let service = platform.verification_service();
        let mut enclave = Enclave::on_platform(Echo, platform);

        // Data owner side.
        let quote = enclave.attest(&mut rng);
        let report = service
            .verify(&quote)
            .expect("quote must verify on the same platform");
        assert_eq!(report.measurement, Measurement::of(b"echo-logic-v1"));

        let skdb = Key128::from_bytes([0x42; 16]);
        let owner_secret = Key256::generate(&mut rng);
        let owner_public = x25519::public_key(&owner_secret);
        let session =
            channel::session_key(&owner_secret, &report.report_data, channel::Role::DataOwner);
        let pae = encdbdb_crypto::Pae::new(&session);
        let wrapped = pae
            .encrypt_with_rng(&mut rng, skdb.as_bytes(), channel::PROVISION_AAD)
            .into_bytes();

        assert!(!enclave.is_provisioned());
        enclave.provision_key(&owner_public, &wrapped).unwrap();
        assert!(enclave.is_provisioned());
    }

    #[test]
    fn provisioning_without_attestation_fails() {
        let mut e = Enclave::new(Echo);
        let err = e.provision_key(&[0u8; 32], &[0u8; 64]).unwrap_err();
        assert_eq!(err, EnclaveError::NoAttestationRound);
    }

    #[test]
    fn seal_data_roundtrips_across_instances_and_counts_ecalls() {
        let mut rng = StdRng::seed_from_u64(31);
        // Two separate enclave instances with the same code identity on the
        // default platform share a sealing key: what one seals, a freshly
        // started twin (e.g. after a server restart) unseals.
        let mut a = Enclave::new(Echo);
        let mut b = Enclave::new(Echo);
        let blob = a.seal_data(&mut rng, b"durable state");
        assert_eq!(b.unseal_data(&blob).unwrap(), b"durable state");
        assert_eq!(a.counters().ecalls, 1);
        assert_eq!(b.counters().ecalls, 1);
    }

    #[test]
    fn seal_data_rejected_by_other_identity() {
        struct Other;
        impl EnclaveLogic for Other {
            type Call<'a> = ();
            type Reply = ();
            fn code_identity(&self) -> &'static [u8] {
                b"other-logic"
            }
            fn dispatch(&mut self, _: &mut TrustedEnv, _: ()) {}
        }
        let mut rng = StdRng::seed_from_u64(32);
        let mut echo = Enclave::new(Echo);
        let mut other = Enclave::new(Other);
        let blob = echo.seal_data(&mut rng, b"secret");
        assert!(other.unseal_data(&blob).is_err());
        // Tampering is caught too.
        let mut flipped = echo.seal_data(&mut rng, b"secret");
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(echo.unseal_data(&flipped).is_err());
    }

    #[test]
    fn tampered_wrapped_key_rejected() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut enclave = Enclave::new(Echo);
        let quote = enclave.attest(&mut rng);
        let owner_secret = Key256::generate(&mut rng);
        let owner_public = x25519::public_key(&owner_secret);
        let session = channel::session_key(
            &owner_secret,
            &quote.report.report_data,
            channel::Role::DataOwner,
        );
        let pae = encdbdb_crypto::Pae::new(&session);
        let mut wrapped = pae
            .encrypt_with_rng(&mut rng, &[9u8; 16], channel::PROVISION_AAD)
            .into_bytes();
        wrapped[20] ^= 1;
        let err = enclave.provision_key(&owner_public, &wrapped).unwrap_err();
        assert!(matches!(err, EnclaveError::Crypto(_)));
    }
}
