//! Secure channel between a remote party and an enclave.
//!
//! After attestation binds the enclave's ephemeral X25519 public key into a
//! verified quote (see [`crate::attestation`]), both sides run X25519 and
//! derive a session key with HKDF over the shared secret and the transcript
//! of both public keys. The data owner then wraps `SK_DB` with AES-GCM under
//! that session key (paper Fig. 5, step 2).

use encdbdb_crypto::hkdf;
use encdbdb_crypto::keys::{Key128, Key256};
use encdbdb_crypto::x25519;

/// AAD bound to provisioning messages so they cannot be replayed in other
/// protocol contexts.
pub const PROVISION_AAD: &[u8] = b"encdbdb/provision-skdb/v1";

/// Which side of the channel is deriving the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The enclave side (its DH public key is in the attestation report).
    Enclave,
    /// The data owner / remote verifier side.
    DataOwner,
}

/// Derives the shared AES-128 session key.
///
/// Both roles must supply their own secret and the peer's public key; the
/// transcript is ordered (enclave key first) so both derive the same key.
pub fn session_key(own_secret: &Key256, peer_public: &[u8; 32], role: Role) -> Key128 {
    let own_public = x25519::public_key(own_secret);
    let shared = x25519::shared_secret(own_secret, peer_public);
    let (enclave_pub, owner_pub) = match role {
        Role::Enclave => (own_public, *peer_public),
        Role::DataOwner => (*peer_public, own_public),
    };
    let mut info = Vec::with_capacity(96);
    info.extend_from_slice(b"encdbdb/session/v1");
    info.extend_from_slice(&enclave_pub);
    info.extend_from_slice(&owner_pub);
    let mut out = [0u8; 16];
    hkdf::hkdf(b"encdbdb-channel", shared.as_bytes(), &info, &mut out);
    Key128::from_bytes(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_roles_derive_same_key() {
        let mut rng = StdRng::seed_from_u64(1);
        let enclave_secret = Key256::generate(&mut rng);
        let owner_secret = Key256::generate(&mut rng);
        let enclave_pub = x25519::public_key(&enclave_secret);
        let owner_pub = x25519::public_key(&owner_secret);
        let k_enclave = session_key(&enclave_secret, &owner_pub, Role::Enclave);
        let k_owner = session_key(&owner_secret, &enclave_pub, Role::DataOwner);
        assert_eq!(k_enclave.as_bytes(), k_owner.as_bytes());
    }

    #[test]
    fn different_peers_derive_different_keys() {
        let mut rng = StdRng::seed_from_u64(2);
        let enclave_secret = Key256::generate(&mut rng);
        let owner1 = Key256::generate(&mut rng);
        let owner2 = Key256::generate(&mut rng);
        let k1 = session_key(&enclave_secret, &x25519::public_key(&owner1), Role::Enclave);
        let k2 = session_key(&enclave_secret, &x25519::public_key(&owner2), Role::Enclave);
        assert_ne!(k1.as_bytes(), k2.as_bytes());
    }

    #[test]
    fn wrapped_key_transits_channel() {
        let mut rng = StdRng::seed_from_u64(3);
        let enclave_secret = Key256::generate(&mut rng);
        let owner_secret = Key256::generate(&mut rng);
        let owner_side = session_key(
            &owner_secret,
            &x25519::public_key(&enclave_secret),
            Role::DataOwner,
        );
        let enclave_side = session_key(
            &enclave_secret,
            &x25519::public_key(&owner_secret),
            Role::Enclave,
        );
        let skdb = [0x33u8; 16];
        let wrapped =
            encdbdb_crypto::Pae::new(&owner_side).encrypt_with_rng(&mut rng, &skdb, PROVISION_AAD);
        let unwrapped = encdbdb_crypto::Pae::new(&enclave_side)
            .decrypt(&wrapped, PROVISION_AAD)
            .unwrap();
        assert_eq!(unwrapped, skdb);
    }
}
