//! Simulated remote attestation.
//!
//! SGX attestation (paper §2.2) works by *measuring* the initial enclave
//! code/data and having platform hardware sign a report containing that
//! measurement plus caller-chosen report data; a verification service (IAS)
//! validates the signature. We model the platform signing key as an HMAC
//! key shared between [`SigningPlatform`] (the CPU) and
//! [`VerificationService`] (the attestation service the data owner trusts),
//! which preserves the protocol structure without a full PKI.

use encdbdb_crypto::hmac::hmac_sha256;
use encdbdb_crypto::keys::Key256;
use encdbdb_crypto::sha256;
use rand::RngCore;

/// A 256-bit enclave measurement (SGX `MRENCLAVE` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement([u8; 32]);

impl Measurement {
    /// Measures a code-identity byte string.
    pub fn of(code_identity: &[u8]) -> Self {
        Measurement(sha256::digest(code_identity))
    }

    /// Raw measurement bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// An attestation report produced inside the enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The enclave measurement.
    pub measurement: Measurement,
    /// 32 bytes of caller data — EncDBDB places the enclave's ephemeral
    /// X25519 public key here so the channel binds to this attestation.
    pub report_data: [u8; 32],
}

impl Report {
    fn signing_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(self.measurement.as_bytes());
        out[32..].copy_from_slice(&self.report_data);
        out
    }
}

/// A platform-signed report (SGX quote analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The signed report.
    pub report: Report,
    /// MAC over the report under the platform key.
    pub signature: [u8; 32],
}

/// The quoting identity of a platform (the "CPU" hosting enclaves).
#[derive(Debug, Clone)]
pub struct SigningPlatform {
    platform_key: Key256,
}

impl Default for SigningPlatform {
    /// A fixed development platform — fine for tests/benches where the
    /// verifier is constructed from the same instance.
    fn default() -> Self {
        SigningPlatform {
            platform_key: Key256::from_bytes([0x5a; 32]),
        }
    }
}

impl SigningPlatform {
    /// Generates a platform with a fresh random key.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        SigningPlatform {
            platform_key: Key256::generate(rng),
        }
    }

    /// Produces a quote for `measurement` with embedded `report_data`.
    pub fn quote(&self, measurement: Measurement, report_data: [u8; 32]) -> Quote {
        let report = Report {
            measurement,
            report_data,
        };
        let signature = hmac_sha256(self.platform_key.as_bytes(), &report.signing_bytes());
        Quote { report, signature }
    }

    /// The verification service endpoint corresponding to this platform
    /// (models the Intel Attestation Service for this platform's key).
    pub fn verification_service(&self) -> VerificationService {
        VerificationService {
            platform_key: self.platform_key.clone(),
        }
    }

    /// The sealing key root for this platform (used by [`crate::sealing`]).
    pub(crate) fn platform_secret(&self) -> &Key256 {
        &self.platform_key
    }
}

/// Verifies quotes on behalf of remote parties.
#[derive(Debug, Clone)]
pub struct VerificationService {
    platform_key: Key256,
}

impl VerificationService {
    /// Verifies a quote's platform signature.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EnclaveError::QuoteInvalid`] if the signature does
    /// not verify.
    pub fn verify(&self, quote: &Quote) -> Result<Report, crate::EnclaveError> {
        let expected = hmac_sha256(self.platform_key.as_bytes(), &quote.report.signing_bytes());
        if encdbdb_crypto::ct::ct_eq(&expected, &quote.signature) {
            Ok(quote.report.clone())
        } else {
            Err(crate::EnclaveError::QuoteInvalid)
        }
    }

    /// Verifies a quote *and* that it attests the expected measurement.
    ///
    /// # Errors
    ///
    /// [`crate::EnclaveError::QuoteInvalid`] on a bad signature,
    /// [`crate::EnclaveError::MeasurementMismatch`] if the enclave code
    /// differs from what the verifier expects.
    pub fn verify_expecting(
        &self,
        quote: &Quote,
        expected: Measurement,
    ) -> Result<Report, crate::EnclaveError> {
        let report = self.verify(quote)?;
        if report.measurement != expected {
            return Err(crate::EnclaveError::MeasurementMismatch);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quote_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let platform = SigningPlatform::generate(&mut rng);
        let m = Measurement::of(b"code");
        let quote = platform.quote(m, [7u8; 32]);
        let report = platform.verification_service().verify(&quote).unwrap();
        assert_eq!(report.measurement, m);
        assert_eq!(report.report_data, [7u8; 32]);
    }

    #[test]
    fn forged_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let platform = SigningPlatform::generate(&mut rng);
        let mut quote = platform.quote(Measurement::of(b"code"), [0u8; 32]);
        quote.signature[0] ^= 1;
        assert_eq!(
            platform.verification_service().verify(&quote),
            Err(crate::EnclaveError::QuoteInvalid)
        );
    }

    #[test]
    fn tampered_report_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let platform = SigningPlatform::generate(&mut rng);
        let mut quote = platform.quote(Measurement::of(b"code"), [0u8; 32]);
        quote.report.report_data[0] ^= 1;
        assert!(platform.verification_service().verify(&quote).is_err());
    }

    #[test]
    fn cross_platform_quote_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let p1 = SigningPlatform::generate(&mut rng);
        let p2 = SigningPlatform::generate(&mut rng);
        let quote = p1.quote(Measurement::of(b"code"), [0u8; 32]);
        assert!(p2.verification_service().verify(&quote).is_err());
    }

    #[test]
    fn measurement_expectation_enforced() {
        let platform = SigningPlatform::default();
        let quote = platform.quote(Measurement::of(b"benign"), [0u8; 32]);
        let svc = platform.verification_service();
        assert!(svc
            .verify_expecting(&quote, Measurement::of(b"benign"))
            .is_ok());
        assert_eq!(
            svc.verify_expecting(&quote, Measurement::of(b"malicious")),
            Err(crate::EnclaveError::MeasurementMismatch)
        );
    }
}
