//! Trusted/untrusted memory model and boundary accounting.
//!
//! SGX v2 (paper §2.2) reserves 128 MiB of RAM for the Processor Reserved
//! Memory of which ~96 MiB are usable for enclave code and data; exceeding
//! it triggers expensive paging. The simulator accounts trusted heap usage
//! against that budget ([`EPC_BUDGET_BYTES`]) and counts every *load* of
//! untrusted memory into the enclave, mirroring the per-value "load into the
//! enclave, decrypt there, compare" pattern of the paper's Algorithm 1.

use encdbdb_crypto::keys::Key128;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Usable EPC budget in bytes (~96 MiB, §2.2).
pub const EPC_BUDGET_BYTES: usize = 96 * 1024 * 1024;

/// Simulated hardware cost of one enclave transition, read once from the
/// `ENCDBDB_SIM_TRANSITION_NS` environment variable.
///
/// On real SGX hardware every ECALL pays an EENTER/EEXIT round trip plus
/// TLB flushes — on the order of ~8k cycles, and far more when EPC paging
/// is involved. The functional simulator charges zero by default (pure
/// counting, so tests stay fast and deterministic); benchmarks that study
/// transition amortisation (DESIGN.md §15) set this to a positive
/// nanosecond value and every counted ECALL then busy-waits that long
/// inside the transition, making `ecalls_total` a wall-clock cost driver.
fn sim_transition_cost() -> Duration {
    static COST: OnceLock<Duration> = OnceLock::new();
    *COST.get_or_init(|| {
        std::env::var("ENCDBDB_SIM_TRANSITION_NS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_nanos)
            .unwrap_or(Duration::ZERO)
    })
}

/// Counters for traffic crossing the enclave boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EcallCounters {
    /// Number of ECALLs (host → enclave entries).
    pub ecalls: u64,
    /// Number of individual loads of untrusted memory performed by trusted
    /// code (one per dictionary entry touched).
    pub untrusted_loads: u64,
    /// Total bytes of untrusted memory loaded into the enclave.
    pub untrusted_bytes: u64,
    /// Entries served from the in-enclave decrypted-value cache (no
    /// untrusted load, no decryption).
    pub cache_hits: u64,
    /// Cache probes that missed and fell through to the counted
    /// load + decrypt path (and then populated the cache).
    pub cache_misses: u64,
}

/// A read-only view of memory residing in the *untrusted* realm.
///
/// Trusted code may only read it through [`TrustedEnv::load`], which
/// accounts each access. The lifetime ties the view to the host-owned
/// buffer, like SGX enclaves addressing host virtual memory.
#[derive(Debug, Clone, Copy)]
pub struct UntrustedMemory<'a> {
    bytes: &'a [u8],
}

impl<'a> UntrustedMemory<'a> {
    /// Wraps a host-owned byte buffer.
    pub fn new(bytes: &'a [u8]) -> Self {
        UntrustedMemory { bytes }
    }

    /// Total length of the untrusted region.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// The environment visible to trusted code during an ECALL.
///
/// Provides counted access to untrusted memory, trusted-heap accounting,
/// and the provisioned master key.
#[derive(Debug)]
pub struct TrustedEnv {
    counters: EcallCounters,
    heap_current: usize,
    heap_peak: usize,
    epc_page_faults: u64,
    master_key: Option<Key128>,
}

impl Default for TrustedEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl TrustedEnv {
    /// Creates an empty trusted environment.
    pub fn new() -> Self {
        TrustedEnv {
            counters: EcallCounters::default(),
            heap_current: 0,
            heap_peak: 0,
            epc_page_faults: 0,
            master_key: None,
        }
    }

    /// Loads `len` bytes at `offset` from untrusted memory into the enclave.
    ///
    /// This is the *only* way trusted code reads host memory; each call
    /// increments the load counters.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds — the hardware analogue is a
    /// fault, and in-enclave code treats it as a programming error.
    #[inline]
    pub fn load<'a>(&mut self, mem: UntrustedMemory<'a>, offset: usize, len: usize) -> &'a [u8] {
        self.counters.untrusted_loads += 1;
        self.counters.untrusted_bytes += len as u64;
        &mem.bytes[offset..offset + len]
    }

    /// Records an ECALL (used by the [`crate::Enclave`] wrapper).
    ///
    /// When [`sim_transition_cost`] is non-zero the call also busy-waits
    /// for that duration, modelling the EENTER/EEXIT overhead a real
    /// enclave pays on every transition. A spin (not a sleep) is used so
    /// the thread keeps its core, like a hardware transition would.
    #[inline]
    pub(crate) fn count_ecall(&mut self) {
        self.counters.ecalls += 1;
        let cost = sim_transition_cost();
        if !cost.is_zero() {
            let start = Instant::now();
            while start.elapsed() < cost {
                std::hint::spin_loop();
            }
        }
    }

    /// Records one decrypted-value cache hit (trusted code served an
    /// entry without touching untrusted memory).
    #[inline]
    pub fn count_cache_hit(&mut self) {
        self.counters.cache_hits += 1;
    }

    /// Records one decrypted-value cache miss (the probe fell through to
    /// the counted load + decrypt path).
    #[inline]
    pub fn count_cache_miss(&mut self) {
        self.counters.cache_misses += 1;
    }

    /// Registers `bytes` of trusted-heap allocation.
    ///
    /// Crossing [`EPC_BUDGET_BYTES`] increments the simulated page-fault
    /// counter instead of failing, matching SGX paging behaviour.
    #[inline]
    pub fn track_alloc(&mut self, bytes: usize) {
        self.heap_current += bytes;
        if self.heap_current > self.heap_peak {
            self.heap_peak = self.heap_current;
        }
        if self.heap_current > EPC_BUDGET_BYTES {
            self.epc_page_faults += 1;
        }
    }

    /// Releases `bytes` of trusted-heap allocation.
    #[inline]
    pub fn track_free(&mut self, bytes: usize) {
        self.heap_current = self.heap_current.saturating_sub(bytes);
    }

    /// Current boundary counters.
    pub fn counters(&self) -> EcallCounters {
        self.counters
    }

    /// Clears the boundary counters.
    pub fn reset_counters(&mut self) {
        self.counters = EcallCounters::default();
    }

    /// Peak trusted-heap bytes observed.
    pub fn heap_peak(&self) -> usize {
        self.heap_peak
    }

    /// Currently tracked trusted-heap bytes.
    pub fn heap_current(&self) -> usize {
        self.heap_current
    }

    /// Resets the peak gauge to the current level.
    pub fn reset_heap_peak(&mut self) {
        self.heap_peak = self.heap_current;
    }

    /// Number of simulated EPC page faults (heap exceeded the budget).
    pub fn epc_page_faults(&self) -> u64 {
        self.epc_page_faults
    }

    /// Installs the provisioned master key.
    pub(crate) fn provision_master_key(&mut self, key: Key128) {
        self.master_key = Some(key);
    }

    /// The provisioned `SK_DB`, if any. Only trusted code can see this —
    /// the method is reachable solely inside [`crate::EnclaveLogic::dispatch`].
    pub fn master_key(&self) -> Option<&Key128> {
        self.master_key.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_counts_accesses_and_bytes() {
        let data = vec![7u8; 64];
        let mem = UntrustedMemory::new(&data);
        let mut env = TrustedEnv::new();
        let chunk = env.load(mem, 8, 16);
        assert_eq!(chunk, &data[8..24]);
        let c = env.counters();
        assert_eq!(c.untrusted_loads, 1);
        assert_eq!(c.untrusted_bytes, 16);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_load_faults() {
        let data = vec![0u8; 8];
        let mem = UntrustedMemory::new(&data);
        let mut env = TrustedEnv::new();
        let _ = env.load(mem, 4, 8);
    }

    #[test]
    fn heap_gauge_peaks_and_frees() {
        let mut env = TrustedEnv::new();
        env.track_alloc(100);
        env.track_alloc(50);
        env.track_free(120);
        assert_eq!(env.heap_current(), 30);
        assert_eq!(env.heap_peak(), 150);
        env.reset_heap_peak();
        assert_eq!(env.heap_peak(), 30);
    }

    #[test]
    fn epc_overflow_counts_page_faults() {
        let mut env = TrustedEnv::new();
        env.track_alloc(EPC_BUDGET_BYTES + 1);
        assert_eq!(env.epc_page_faults(), 1);
        env.track_free(EPC_BUDGET_BYTES + 1);
        env.track_alloc(10);
        assert_eq!(env.epc_page_faults(), 1);
    }

    #[test]
    fn untrusted_memory_len() {
        let data = [1u8, 2, 3];
        let mem = UntrustedMemory::new(&data);
        assert_eq!(mem.len(), 3);
        assert!(!mem.is_empty());
        assert!(UntrustedMemory::new(&[]).is_empty());
    }
}
