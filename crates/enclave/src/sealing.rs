//! Data sealing: encrypting data to the enclave identity.
//!
//! SGX sealing derives a key from the platform root secret and the enclave
//! measurement, so only the same enclave on the same platform can unseal.
//! The simulator derives the sealing key via HKDF over the platform secret
//! and the measurement, and seals with AES-128-GCM.

use crate::attestation::{Measurement, SigningPlatform};
use crate::error::EnclaveError;
use encdbdb_crypto::keys::Key128;
use encdbdb_crypto::Pae;
use rand::RngCore;

const SEAL_AAD: &[u8] = b"encdbdb/sealed-blob/v1";

/// Derives the sealing key for an enclave identity on a platform.
fn sealing_key(platform: &SigningPlatform, measurement: Measurement) -> Key128 {
    let mut info = Vec::with_capacity(64);
    info.extend_from_slice(b"encdbdb/sealing/v1");
    info.extend_from_slice(measurement.as_bytes());
    let mut out = [0u8; 16];
    encdbdb_crypto::hkdf::hkdf(
        b"encdbdb-sealing",
        platform.platform_secret().as_bytes(),
        &info,
        &mut out,
    );
    Key128::from_bytes(out)
}

/// Seals `data` to `(platform, measurement)`.
pub fn seal<R: RngCore + ?Sized>(
    platform: &SigningPlatform,
    measurement: Measurement,
    rng: &mut R,
    data: &[u8],
) -> Vec<u8> {
    let key = sealing_key(platform, measurement);
    Pae::new(&key)
        .encrypt_with_rng(rng, data, SEAL_AAD)
        .into_bytes()
}

/// Unseals a blob sealed by [`seal`] with the same identity.
///
/// # Errors
///
/// Returns [`EnclaveError::Crypto`] if the blob was sealed for a different
/// enclave/platform or was tampered with.
pub fn unseal(
    platform: &SigningPlatform,
    measurement: Measurement,
    blob: &[u8],
) -> Result<Vec<u8>, EnclaveError> {
    let key = sealing_key(platform, measurement);
    Ok(Pae::new(&key).decrypt_bytes(blob, SEAL_AAD)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seal_unseal_roundtrip() {
        let mut rng = StdRng::seed_from_u64(21);
        let platform = SigningPlatform::generate(&mut rng);
        let m = Measurement::of(b"enclave-code");
        let blob = seal(&platform, m, &mut rng, b"secret state");
        assert_eq!(unseal(&platform, m, &blob).unwrap(), b"secret state");
    }

    #[test]
    fn other_enclave_cannot_unseal() {
        let mut rng = StdRng::seed_from_u64(22);
        let platform = SigningPlatform::generate(&mut rng);
        let blob = seal(&platform, Measurement::of(b"a"), &mut rng, b"x");
        assert!(unseal(&platform, Measurement::of(b"b"), &blob).is_err());
    }

    #[test]
    fn other_platform_cannot_unseal() {
        let mut rng = StdRng::seed_from_u64(23);
        let p1 = SigningPlatform::generate(&mut rng);
        let p2 = SigningPlatform::generate(&mut rng);
        let m = Measurement::of(b"a");
        let blob = seal(&p1, m, &mut rng, b"x");
        assert!(unseal(&p2, m, &blob).is_err());
    }

    #[test]
    fn tampered_blob_rejected() {
        let mut rng = StdRng::seed_from_u64(24);
        let platform = SigningPlatform::generate(&mut rng);
        let m = Measurement::of(b"a");
        let mut blob = seal(&platform, m, &mut rng, b"x");
        let last = blob.len() - 1;
        blob[last] ^= 1;
        assert!(unseal(&platform, m, &blob).is_err());
    }
}
