//! Error types for the enclave simulator.

use encdbdb_crypto::CryptoError;
use std::error::Error;
use std::fmt;

/// Errors produced by enclave operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnclaveError {
    /// A quote's platform signature failed verification.
    QuoteInvalid,
    /// The quote verified, but the measurement is not the expected enclave.
    MeasurementMismatch,
    /// Key provisioning was attempted without a preceding attestation round.
    NoAttestationRound,
    /// An underlying cryptographic operation failed.
    Crypto(CryptoError),
}

impl fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnclaveError::QuoteInvalid => write!(f, "attestation quote signature invalid"),
            EnclaveError::MeasurementMismatch => {
                write!(f, "enclave measurement does not match expectation")
            }
            EnclaveError::NoAttestationRound => {
                write!(f, "provisioning requires a prior attestation round")
            }
            EnclaveError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
        }
    }
}

impl Error for EnclaveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnclaveError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for EnclaveError {
    fn from(e: CryptoError) -> Self {
        EnclaveError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EnclaveError::QuoteInvalid.to_string().contains("quote"));
        assert!(EnclaveError::Crypto(CryptoError::TagMismatch)
            .to_string()
            .contains("tag"));
    }

    #[test]
    fn source_chains_to_crypto() {
        let e = EnclaveError::from(CryptoError::TagMismatch);
        assert!(e.source().is_some());
        assert!(EnclaveError::QuoteInvalid.source().is_none());
    }
}
